//! Synthetic Twitter dataset for the MapD-integration experiments
//! (Section 6.8).
//!
//! The paper evaluates four queries on 250M tweets from May 2017. That
//! dataset is proprietary; this module synthesizes a table with the same
//! columns and the statistical properties the queries are sensitive to:
//!
//! * `tweet_time` — uniform over the month, so a time-range predicate's
//!   selectivity is proportional to the range (the Figure 16a sweep).
//! * `retweet_count`, `likes_count` — power-law (most tweets ~0, a heavy
//!   tail of viral ones), so top-k keys have realistic skew.
//! * `lang` — categorical with an en/es share of ≈80% (query Q3's stated
//!   selectivity).
//! * `uid` — Zipf over a user universe sized so distinct-user count is a
//!   large fraction of tweets (the paper: 57M users / 250M tweets ≈ 23%).

use crate::dist::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Language codes used by the generator. `En`/`Es` together cover ~80% of
/// tweets, matching query Q3's selectivity.
pub const LANG_EN: u8 = 0;
/// Spanish.
pub const LANG_ES: u8 = 1;
/// Portuguese.
pub const LANG_PT: u8 = 2;
/// Japanese.
pub const LANG_JA: u8 = 3;
/// Arabic.
pub const LANG_AR: u8 = 4;
/// Everything else.
pub const LANG_OTHER: u8 = 5;

/// Column-oriented tweet table.
#[derive(Debug, Clone)]
pub struct TweetTable {
    /// Unique tweet id, 0..n.
    pub id: Vec<u32>,
    /// Seconds since the start of the month, uniform in `[0, MONTH_SECONDS)`.
    pub tweet_time: Vec<u32>,
    /// Retweets; power-law with unit scale.
    pub retweet_count: Vec<u32>,
    /// Likes; power-law, correlated with retweets.
    pub likes_count: Vec<u32>,
    /// Language code (see the `LANG_*` constants).
    pub lang: Vec<u8>,
    /// Author id, Zipf-distributed over the user universe.
    pub uid: Vec<u32>,
}

/// Seconds in the simulated month (May has 31 days).
pub const MONTH_SECONDS: u32 = 31 * 24 * 3600;

impl TweetTable {
    /// Number of tweets.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Generates `n` tweets with ~`0.23 * n` distinct users (paper ratio).
    pub fn generate(n: usize, seed: u64) -> Self {
        let universe = ((n as f64 * 0.23) as usize).max(16);
        Self::generate_with_users(n, universe, seed)
    }

    /// Generates `n` tweets over a fixed user universe.
    pub fn generate_with_users(n: usize, user_universe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut retweet_count = Vec::with_capacity(n);
        let mut likes_count = Vec::with_capacity(n);
        let mut tweet_time = Vec::with_capacity(n);
        let mut lang = Vec::with_capacity(n);

        for _ in 0..n {
            tweet_time.push(rng.gen_range(0..MONTH_SECONDS));
            // Power-law counts: x = floor(scale * (u^(-1/alpha) - 1)),
            // alpha≈1.3 gives a heavy tail with a mode at zero.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let rt = (0.8 * (u.powf(-1.0 / 1.3) - 1.0)).floor().min(5e7) as u32;
            retweet_count.push(rt);
            // Likes correlate with retweets (roughly 3x) plus noise.
            let noise: f64 = rng.gen::<f64>().max(1e-12);
            let lk = (rt as f64 * 3.0 + 2.0 * (noise.powf(-1.0 / 1.5) - 1.0))
                .floor()
                .min(2e8) as u32;
            likes_count.push(lk);
            let l: f64 = rng.gen();
            lang.push(match l {
                x if x < 0.62 => LANG_EN,
                x if x < 0.80 => LANG_ES,
                x if x < 0.86 => LANG_PT,
                x if x < 0.92 => LANG_JA,
                x if x < 0.96 => LANG_AR,
                _ => LANG_OTHER,
            });
        }

        let uid = Zipf::new(user_universe, 1.05).sample(n, seed ^ 0x5eed_1234);

        Self {
            id: (0..n as u32).collect(),
            tweet_time,
            retweet_count,
            likes_count,
            lang,
            uid,
        }
    }

    /// The time-range cutoff whose predicate `tweet_time < cutoff` has the
    /// given selectivity (used to drive the Figure 16a sweep).
    pub fn time_cutoff_for_selectivity(&self, selectivity: f64) -> u32 {
        (MONTH_SECONDS as f64 * selectivity.clamp(0.0, 1.0)) as u32
    }

    /// Generates an arrival batch of `n` tweets whose ids continue a
    /// stream at `first_id` (ids `first_id..first_id + n`). The batch
    /// has the same marginal distributions as [`TweetTable::generate`],
    /// so appending batches models the steady arrival process the
    /// streaming ingest path serves.
    pub fn generate_at(n: usize, seed: u64, first_id: u32) -> Self {
        let mut t = Self::generate(n, seed);
        for id in &mut t.id {
            *id += first_id;
        }
        t
    }

    /// Appends every row of `batch` to this table (columns extend
    /// in arrival order; the caller keeps ids monotone by generating
    /// batches with [`TweetTable::generate_at`]).
    pub fn extend_from(&mut self, batch: &TweetTable) {
        self.id.extend_from_slice(&batch.id);
        self.tweet_time.extend_from_slice(&batch.tweet_time);
        self.retweet_count.extend_from_slice(&batch.retweet_count);
        self.likes_count.extend_from_slice(&batch.likes_count);
        self.lang.extend_from_slice(&batch.lang);
        self.uid.extend_from_slice(&batch.uid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_shapes() {
        let t = TweetTable::generate(10_000, 1);
        assert_eq!(t.len(), 10_000);
        assert!(!t.is_empty());
        assert_eq!(t.id.len(), t.uid.len());
        assert_eq!(t.id[0], 0);
        assert_eq!(*t.id.last().unwrap(), 9_999);
    }

    #[test]
    fn reproducible() {
        let a = TweetTable::generate(5_000, 9);
        let b = TweetTable::generate(5_000, 9);
        assert_eq!(a.retweet_count, b.retweet_count);
        assert_eq!(a.uid, b.uid);
    }

    #[test]
    fn en_es_share_near_80_percent() {
        let t = TweetTable::generate(50_000, 2);
        let hits = t
            .lang
            .iter()
            .filter(|&&l| l == LANG_EN || l == LANG_ES)
            .count();
        let share = hits as f64 / t.len() as f64;
        assert!((0.77..0.83).contains(&share), "share={share}");
    }

    #[test]
    fn retweets_are_heavy_tailed() {
        let t = TweetTable::generate(100_000, 3);
        let zeros = t.retweet_count.iter().filter(|&&r| r == 0).count();
        let max = *t.retweet_count.iter().max().unwrap();
        // mode at zero, but a large tail
        assert!(zeros > t.len() / 3, "zeros={zeros}");
        assert!(max > 1_000, "max={max}");
    }

    #[test]
    fn time_uniform_and_cutoff_selectivity() {
        let t = TweetTable::generate(100_000, 4);
        let cutoff = t.time_cutoff_for_selectivity(0.3);
        let sel = t.tweet_time.iter().filter(|&&x| x < cutoff).count() as f64 / t.len() as f64;
        assert!((0.28..0.32).contains(&sel), "sel={sel}");
        assert_eq!(t.time_cutoff_for_selectivity(0.0), 0);
        assert_eq!(t.time_cutoff_for_selectivity(1.5), MONTH_SECONDS);
    }

    #[test]
    fn users_are_skewed() {
        let t = TweetTable::generate_with_users(50_000, 1_000, 5);
        let mut counts = vec![0usize; 1_000];
        for &u in &t.uid {
            counts[u as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // top user should own far more than the median user
        assert!(counts[0] > 20 * counts[500].max(1));
    }
}
