//! Closed-form estimator for sharded top-k on a multi-device node.
//!
//! The sharded execution (see `qdb::shard`) has three phases, and the
//! estimate prices each with the same Section 7 machinery the
//! single-device models use:
//!
//! 1. **local pass** — every shard runs the bitonic top-k over its rows
//!    concurrently, so the phase costs the *slowest* shard;
//! 2. **delegate gather** — each non-resident shard ships its `k`
//!    delegate candidates to device 0. With peer links the transfers use
//!    disjoint channels and overlap; staged through the host they
//!    serialize on the shared host→device-0 channel, which the model
//!    charges as a latency fill plus the serialized byte time;
//! 3. **merge** — device 0 reduces the `shards × k_eff` delegate runs
//!    with the bitonic combine.
//!
//! Like the single-device models this never executes anything; the
//! `cluster` bench suite compares it against the simulated cluster.

use simt::topology::ClusterSpec;

use crate::{bitonic_topk_seconds, BitonicModelInput};

/// Workload description for the sharded estimator.
#[derive(Debug, Clone)]
pub struct ClusterModelInput {
    /// Rows resident on each device (index = device id; device 0 hosts
    /// the merge).
    pub shard_rows: Vec<usize>,
    /// Requested k.
    pub k: usize,
    /// Bytes per item on the wire and in the top-k pipeline.
    pub item_bytes: usize,
}

impl ClusterModelInput {
    /// An evenly partitioned table of `n` rows over `devices` devices —
    /// what the range policy produces.
    pub fn balanced(n: usize, devices: usize, k: usize, item_bytes: usize) -> Self {
        let base = n / devices;
        let rem = n % devices;
        ClusterModelInput {
            shard_rows: (0..devices).map(|i| base + usize::from(i < rem)).collect(),
            k,
            item_bytes,
        }
    }
}

/// The estimator's per-phase breakdown.
#[derive(Debug, Clone, Copy)]
pub struct ClusterEstimate {
    /// Slowest shard's local top-k pass, seconds.
    pub local_seconds: f64,
    /// Delegate gather over the interconnect, seconds.
    pub transfer_seconds: f64,
    /// Device-0 merge of the delegate runs, seconds.
    pub merge_seconds: f64,
    /// Delegate bytes shipped to device 0.
    pub candidate_bytes: usize,
}

impl ClusterEstimate {
    /// End-to-end predicted seconds (phases are sequential in the model:
    /// the gather cannot start before the local pass nor the merge
    /// before the gather).
    pub fn total_seconds(&self) -> f64 {
        self.local_seconds + self.transfer_seconds + self.merge_seconds
    }
}

/// Prices a sharded bitonic top-k on `cluster`.
pub fn cluster_topk_seconds(cluster: &ClusterSpec, input: &ClusterModelInput) -> ClusterEstimate {
    let spec = &cluster.device;
    let k = input.k;
    let ib = input.item_bytes;

    // phase 1: concurrent local passes — the slowest shard gates
    let local_seconds = input
        .shard_rows
        .iter()
        .filter(|&&n| n > 0)
        .map(|&n| bitonic_topk_seconds(spec, BitonicModelInput::with_defaults(n, k.min(n), ib)))
        .fold(0.0, f64::max);

    // phase 2: delegate gather to device 0 (shard 0 is resident)
    let delegate_counts: Vec<usize> = input.shard_rows.iter().map(|&n| k.min(n)).collect();
    let shipped: Vec<usize> = delegate_counts
        .iter()
        .enumerate()
        .filter(|&(i, &d)| i > 0 && d > 0)
        .map(|(_, &d)| d * ib)
        .collect();
    let candidate_bytes: usize = shipped.iter().sum();
    let transfer_seconds = if shipped.is_empty() {
        0.0
    } else if let Some(peer) = &cluster.peer_link {
        // disjoint peer channels: transfers overlap, slowest gates
        shipped.iter().map(|&b| peer.seconds(b)).fold(0.0, f64::max)
    } else {
        // staged through the host: the host→dev0 leg is one channel, so
        // the byte times serialize behind one pipeline-fill latency
        cluster.host_link.latency
            + shipped
                .iter()
                .map(|&b| cluster.host_link.seconds(b))
                .sum::<f64>()
    };

    // phase 3: bitonic combine of the k_eff-padded delegate runs
    let total_delegates: usize = delegate_counts.iter().sum();
    let merge_seconds = if total_delegates == 0 {
        0.0
    } else {
        let k_req = k.min(total_delegates);
        let k_eff = k_req.next_power_of_two();
        let runs = delegate_counts.iter().filter(|&&d| d > 0).count();
        let merge_n = (runs * k_eff).next_power_of_two();
        bitonic_topk_seconds(spec, BitonicModelInput::with_defaults(merge_n, k_req, ib))
    };

    ClusterEstimate {
        local_seconds,
        transfer_seconds,
        merge_seconds,
        candidate_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pass_shrinks_with_more_devices() {
        let n = 1 << 22;
        let mut prev = f64::INFINITY;
        for devices in [1usize, 2, 4, 8] {
            let cluster = ClusterSpec::pcie_node(devices);
            let est =
                cluster_topk_seconds(&cluster, &ClusterModelInput::balanced(n, devices, 64, 8));
            assert!(
                est.local_seconds < prev,
                "{devices} devices: {} >= {prev}",
                est.local_seconds
            );
            prev = est.local_seconds;
        }
    }

    #[test]
    fn transfer_and_merge_grow_with_devices() {
        let n = 1 << 22;
        let one = cluster_topk_seconds(
            &ClusterSpec::pcie_node(1),
            &ClusterModelInput::balanced(n, 1, 64, 8),
        );
        let eight = cluster_topk_seconds(
            &ClusterSpec::pcie_node(8),
            &ClusterModelInput::balanced(n, 8, 64, 8),
        );
        assert_eq!(one.candidate_bytes, 0);
        assert_eq!(one.transfer_seconds, 0.0);
        assert_eq!(eight.candidate_bytes, 7 * 64 * 8);
        assert!(eight.transfer_seconds > 0.0);
        assert!(eight.merge_seconds > one.merge_seconds);
    }

    #[test]
    fn eight_devices_halve_the_total_at_full_scale() {
        // the bench-diff cluster claim, asserted against the model: at
        // n = 2^22, k = 64, eight devices must at least halve the
        // single-device time despite gather + merge overhead
        let n = 1 << 22;
        let one = cluster_topk_seconds(
            &ClusterSpec::pcie_node(1),
            &ClusterModelInput::balanced(n, 1, 64, 8),
        );
        let eight = cluster_topk_seconds(
            &ClusterSpec::pcie_node(8),
            &ClusterModelInput::balanced(n, 8, 64, 8),
        );
        assert!(
            eight.total_seconds() <= 0.5 * one.total_seconds(),
            "8-dev {} vs 1-dev {}",
            eight.total_seconds(),
            one.total_seconds()
        );
    }

    #[test]
    fn peer_links_beat_staged_host_transfers() {
        let n = 1 << 20;
        let input = ClusterModelInput::balanced(n, 8, 64, 8);
        let pcie = cluster_topk_seconds(&ClusterSpec::pcie_node(8), &input);
        let nvlink = cluster_topk_seconds(&ClusterSpec::nvlink_node(8), &input);
        assert!(nvlink.transfer_seconds < pcie.transfer_seconds);
        assert_eq!(nvlink.candidate_bytes, pcie.candidate_bytes);
    }

    #[test]
    fn empty_and_degenerate_shards_are_safe() {
        let cluster = ClusterSpec::pcie_node(4);
        let est = cluster_topk_seconds(
            &cluster,
            &ClusterModelInput {
                shard_rows: vec![100, 0, 0, 5],
                k: 64,
                item_bytes: 8,
            },
        );
        // shard 3 ships only its 5 rows
        assert_eq!(est.candidate_bytes, 5 * 8);
        assert!(est.total_seconds().is_finite());
        let empty = cluster_topk_seconds(
            &cluster,
            &ClusterModelInput {
                shard_rows: vec![0; 4],
                k: 64,
                item_bytes: 8,
            },
        );
        assert_eq!(empty.total_seconds(), 0.0);
    }
}
