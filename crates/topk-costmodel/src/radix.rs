//! Section 7.1: the radix select cost model (and a sort model for the
//! planner's baseline column).

use crate::model_threads;
use simt::DeviceSpec;

/// How much each radix pass shrinks the candidate set — the `η_i` of the
/// paper's model. Distribution-dependent, so the model exposes the
/// canonical profiles of the evaluation section.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionProfile {
    /// Full-range uniform integers: every 8-bit digit is uniform, so each
    /// pass keeps ~1/256 of the candidates.
    UniformInts,
    /// Uniform `U(0,1)` floats: the exponent concentrates the top digit
    /// (pass 1 keeps ~1/2), subsequent digits are uniform (~1/256).
    UniformFloats,
    /// The adversarial bucket-killer input: each pass eliminates exactly
    /// one element, so `η → 1` from below — the clustering write is
    /// *never* skipped and every pass reads and rewrites the whole input,
    /// degrading to sort-like cost (Figure 12b).
    BucketKiller,
    /// Explicit per-pass fractions.
    Custom(Vec<f64>),
}

impl ReductionProfile {
    /// Fraction of candidates surviving pass `i` (0-based).
    pub fn eta(&self, pass: u32) -> f64 {
        match self {
            ReductionProfile::UniformInts => 1.0 / 256.0,
            ReductionProfile::UniformFloats => {
                if pass == 0 {
                    0.5
                } else {
                    1.0 / 256.0
                }
            }
            // one element removed per pass: η just below 1, so the
            // write-skip never fires
            ReductionProfile::BucketKiller => 1.0 - 1e-7,
            ReductionProfile::Custom(v) => v.get(pass as usize).copied().unwrap_or(1.0 / 256.0),
        }
    }
}

/// Predicted radix select time in seconds (paper §7.1).
///
/// Pass `i` over `D_i` bytes:
/// `T_I1 = D_i/B_G + 16·4·n_t/B_G` (read + per-thread histogram),
/// `T_I2 = 2·16·4·n_t/B_G` (prefix sum),
/// `T_I3 = D_i/B_G + η_i·D_i/B_G` (clustering; skipped when `η_i = 1`).
pub fn radix_select_seconds(
    spec: &DeviceSpec,
    n: usize,
    key_bytes: usize,
    profile: &ReductionProfile,
) -> f64 {
    let bg = spec.global_bw;
    let passes = (key_bytes * 8 / 8) as u32; // one pass per 8-bit digit

    let mut d = (n * key_bytes) as f64;
    let mut total = 0.0;
    for i in 0..passes {
        if d < 1.0 {
            break;
        }
        // threads scale with the live candidate count, as the launch does
        let nt = model_threads(spec, (d as usize) / key_bytes.max(1));
        let hist_bytes = 16.0 * 4.0 * nt;
        let eta = profile.eta(i);
        let t_i1 = d / bg + hist_bytes / bg;
        let t_i2 = 2.0 * hist_bytes / bg;
        let t_i3 = if eta >= 1.0 {
            0.0
        } else {
            d / bg + eta * d / bg
        };
        // three kernels per pass (two when clustering is skipped)
        let launches = if eta >= 1.0 { 2.0 } else { 3.0 };
        total += t_i1 + t_i2 + t_i3 + launches * spec.launch_overhead;
        d *= eta;
    }
    total
}

/// Predicted LSD radix sort time (the sort-and-choose baseline): per
/// digit, a histogram read plus a scatter read/write of the full input
/// (the scatter write at the partially-coalesced factor the
/// implementation charges).
pub fn sort_seconds(spec: &DeviceSpec, n: usize, key_bytes: usize) -> f64 {
    let bg = spec.global_bw;
    let d = (n * key_bytes) as f64;
    let passes = (key_bytes * 8 / 8) as f64;
    passes * (d / bg + (d + 2.0 * d) / bg + 2.0 * spec.launch_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn first_pass_dominates_uniform_ints() {
        // §7: the first radix select kernel should cost ≈ 8.6 ms at 2^29
        // floats (D = 2^31 bytes)
        let t = radix_select_seconds(&spec(), 1 << 29, 4, &ReductionProfile::UniformInts);
        let first_read = (1u64 << 31) as f64 / spec().global_bw;
        assert!(t > first_read, "must at least read the input once");
        assert!(
            t < 3.0 * first_read,
            "uniform ints should be dominated by pass 1: {t} vs {first_read}"
        );
    }

    #[test]
    fn floats_cost_more_than_ints() {
        let ti = radix_select_seconds(&spec(), 1 << 26, 4, &ReductionProfile::UniformInts);
        let tf = radix_select_seconds(&spec(), 1 << 26, 4, &ReductionProfile::UniformFloats);
        assert!(
            tf > ti,
            "float exponent clustering costs extra: {tf} vs {ti}"
        );
    }

    #[test]
    fn bucket_killer_approaches_sort() {
        // Figure 12b: radix select degrades to ~sort-like full passes
        let tb = radix_select_seconds(&spec(), 1 << 26, 4, &ReductionProfile::BucketKiller);
        let tu = radix_select_seconds(&spec(), 1 << 26, 4, &ReductionProfile::UniformFloats);
        assert!(tb > 1.5 * tu, "bk={tb} uniform={tu}");
        let ts = sort_seconds(&spec(), 1 << 26, 4);
        assert!(
            tb > 0.5 * ts && tb < 1.2 * ts,
            "should be in the sort regime: bk={tb} sort={ts}"
        );
    }

    #[test]
    fn wider_keys_more_passes() {
        let t4 = radix_select_seconds(&spec(), 1 << 24, 4, &ReductionProfile::UniformInts);
        let t8 = radix_select_seconds(&spec(), 1 << 23, 8, &ReductionProfile::UniformInts);
        // same total bytes, but 64-bit keys run more (tiny) passes and more
        // launches
        assert!(t8 > t4 * 0.99);
    }

    #[test]
    fn custom_profile_used() {
        // η exactly 1 triggers the write-skip: cheaper than bucket killer
        let p = ReductionProfile::Custom(vec![1.0, 1.0, 1.0, 1.0]);
        let t = radix_select_seconds(&spec(), 1 << 24, 4, &p);
        let tb = radix_select_seconds(&spec(), 1 << 24, 4, &ReductionProfile::BucketKiller);
        assert!(t < tb, "skip path {t} must beat full rewrites {tb}");
        assert_eq!(p.eta(7), 1.0 / 256.0, "past the vector: default");
    }

    #[test]
    fn sort_linear_in_n() {
        let t1 = sort_seconds(&spec(), 1 << 24, 4);
        let t2 = sort_seconds(&spec(), 1 << 25, 4);
        assert!((t2 / t1 - 2.0).abs() < 0.05);
    }
}
