#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Analytic cost models for the two best-performing top-k algorithms
//! (paper Section 7): radix select and bitonic top-k — plus the planner
//! that a query optimizer would use to choose between them (the use case
//! the paper motivates the models with).
//!
//! The models are closed-form: they never execute anything. Their inputs
//! are the hardware parameters of Section 7 — global bandwidth `B_G`,
//! shared bandwidth `B_S`, key width `w`, data size `D`, thread count
//! `n_t` — and (for radix select) a per-pass reduction profile, since the
//! pass behaviour depends on the key distribution.
//!
//! The `fig17_cost_model` bench compares these predictions against the
//! simulator's measured times, reproducing Figure 17.

pub mod bitonic;
pub mod cluster;
pub mod delegate;
pub mod extended;
pub mod planner;
pub mod radix;

pub use bitonic::{bitonic_topk_seconds, shared_traffic_factor, BitonicModelInput};
pub use cluster::{cluster_topk_seconds, ClusterEstimate, ClusterModelInput};
pub use delegate::{delegate_select_phases, delegate_select_seconds, DelegatePhases};
pub use extended::{bucket_select_seconds, per_thread_seconds, HeapProfile};
pub use planner::{
    recommend, recommend_checked, recommend_full, Choice, FullAlgorithm, PlanConfig, PlanRejection,
    RankedAlgorithm,
};
pub use radix::{radix_select_seconds, sort_seconds, ReductionProfile};

use simt::DeviceSpec;

/// Threads the selection kernels launch (the paper's cost model treats
/// this as a hardware constant: enough threads to fill the device).
pub(crate) fn model_threads(spec: &DeviceSpec, n: usize) -> f64 {
    ((n as f64) / 64.0).clamp(256.0, (spec.num_sms * 2048) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_threads_saturates() {
        let spec = DeviceSpec::titan_x_maxwell();
        assert_eq!(model_threads(&spec, 1 << 29), (24 * 2048) as f64);
        assert_eq!(model_threads(&spec, 1 << 10), 256.0);
    }
}
