//! Section 7.2: the bitonic top-k cost model.
//!
//! Per kernel, two candidate bounds: global traffic
//! `T_g = D/B_G + D/(x·B_G)` (read everything, write the 1/x reduction)
//! and shared traffic `T_k = Σ_i δ_i (D_Ii + D_Oi)/B_S` summed over the
//! kernel's combined steps. The kernel costs `max(T_g, T_k)`; the
//! algorithm is the sum over its reduction stages. The shared-step sum is
//! derived from the same `sortnet` step-group plans the implementation
//! executes, so model and implementation share one source of truth for
//! the schedule.

use simt::DeviceSpec;
use sortnet::{local_sort_steps, rebuild_steps, StepGroupPlan};

/// Inputs of the bitonic model.
#[derive(Debug, Clone, Copy)]
pub struct BitonicModelInput {
    /// Number of input items.
    pub n: usize,
    /// Requested k (rounded up to a power of two internally).
    pub k: usize,
    /// Bytes per item.
    pub item_bytes: usize,
    /// Elements per thread (the B of Section 4.3; 16 with all
    /// optimizations).
    pub elems_per_thread: usize,
    /// Average shared-memory bank-conflict degree `δ` (1.0 with padding
    /// and chunk permutation for k ≤ 256).
    pub conflict_degree: f64,
}

impl BitonicModelInput {
    /// Model inputs with the all-optimizations defaults (B = 16,
    /// conflict-free).
    pub fn with_defaults(n: usize, k: usize, item_bytes: usize) -> Self {
        Self {
            n,
            k,
            item_bytes,
            elems_per_thread: 16,
            conflict_degree: 1.0,
        }
    }
}

/// Shared-memory words moved per element by one kernel, relative to the
/// kernel's input size, derived from the step-group plans.
///
/// `merges` is the number of halvings the kernel performs; `local_sort`
/// selects SortReducer (true) or BitonicReducer (false) op pipelines.
/// Public so fused operators (qdb) can charge the same shared traffic the
/// standalone SortReducer would.
pub fn shared_traffic_factor(k: usize, b: usize, merges: usize, local_sort: bool) -> f64 {
    let k = k.next_power_of_two();
    let ls_groups = StepGroupPlan::plan(&local_sort_steps(k), b).round_trips() as f64;
    let rb_groups = StepGroupPlan::plan(&rebuild_steps(k), b).round_trips() as f64;

    let mut traffic = 1.0; // the staging load
    let mut live = 1.0f64;
    if local_sort {
        traffic += 2.0 * ls_groups * live;
    } else {
        traffic += 2.0 * rb_groups * live;
    }
    for m in 0..merges {
        // merge: read live, write live/2
        traffic += 1.5 * live;
        live /= 2.0;
        if m + 1 < merges {
            traffic += 2.0 * rb_groups * live;
        }
    }
    traffic += live; // staging read for the global store
    traffic
}

/// Predicted bitonic top-k time in seconds.
pub fn bitonic_topk_seconds(spec: &DeviceSpec, input: BitonicModelInput) -> f64 {
    let BitonicModelInput {
        n,
        k,
        item_bytes,
        elems_per_thread: b,
        conflict_degree,
    } = input;
    let k_eff = k.next_power_of_two();
    let bg = spec.global_bw;
    let bs = spec.shared_bw;
    let x = b as f64; // per-kernel reduction factor

    let mut total = 0.0;
    let mut live = n.next_power_of_two() as f64;
    let mut first = true;
    while live > k_eff as f64 {
        let merges = (x.log2() as usize)
            .min((live / k_eff as f64).log2() as usize)
            .max(1);
        let reduction = (1 << merges) as f64;
        let d = live * item_bytes as f64;
        let t_g = d / bg + d / (reduction * bg);
        let factor = shared_traffic_factor(k_eff, b, merges, first);
        let t_k = conflict_degree * factor * d / bs;
        total += t_g.max(t_k) + spec.launch_overhead;
        live /= reduction;
        first = false;
    }
    // final rebuild of the surviving k run
    total += spec.launch_overhead;
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn paper_magnitudes_topk32_at_2e29() {
        // §7.2 works the example: SortReducer global time ≈ 8.96 ms and
        // the whole kernel ≈ 12.1 ms predicted (14.2 ms actual). Our model
        // sums all stages; the total must land in the same regime
        // (10–25 ms) and certainly between the scan floor and sort.
        let t = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 29, 32, 4));
        let floor = (1u64 << 31) as f64 / spec().global_bw;
        assert!(t > floor, "cannot beat one full read: {t} vs {floor}");
        assert!(t < 3.0 * floor, "top-32 should be near memory-bound: {t}");
    }

    #[test]
    fn grows_with_k() {
        let t32 = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 26, 32, 4));
        let t256 = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 26, 256, 4));
        let t1024 =
            bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 26, 1024, 4));
        assert!(t32 < t256 && t256 < t1024, "{t32} {t256} {t1024}");
    }

    #[test]
    fn linear_in_n() {
        let t1 = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 24, 64, 4));
        let t2 = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 25, 64, 4));
        assert!((t2 / t1 - 2.0).abs() < 0.2, "t2/t1 = {}", t2 / t1);
    }

    #[test]
    fn conflicts_slow_it_down() {
        let clean = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 26, 32, 4));
        let conflicted = bitonic_topk_seconds(
            &spec(),
            BitonicModelInput {
                conflict_degree: 4.0,
                ..BitonicModelInput::with_defaults(1 << 26, 32, 4)
            },
        );
        assert!(conflicted > 1.5 * clean);
    }

    #[test]
    fn shared_factor_is_near_paper_constant() {
        // §7.2: T_k for SortReducer at k = 32 ≈ 17.5 D/B_S (in bytes).
        // Our factor counts words-per-element round trips; with B = 16 it
        // should be the same order (load + 2 local-sort groups + merges).
        let f = shared_traffic_factor(32, 16, 4, true);
        assert!(
            (5.0..25.0).contains(&f),
            "SortReducer shared factor {f} out of plausible range"
        );
    }

    #[test]
    fn more_elems_per_thread_fewer_stages() {
        let b8 = bitonic_topk_seconds(
            &spec(),
            BitonicModelInput {
                elems_per_thread: 8,
                ..BitonicModelInput::with_defaults(1 << 26, 32, 4)
            },
        );
        let b16 = bitonic_topk_seconds(&spec(), BitonicModelInput::with_defaults(1 << 26, 32, 4));
        assert!(b16 <= b8 * 1.05, "B=16 {b16} should not lose to B=8 {b8}");
    }
}
