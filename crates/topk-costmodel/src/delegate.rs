//! Cost model for delegate-centric top-k (Dr. Top-k) — **beyond the
//! paper**, following the same closed-form style as the other models:
//! bandwidth terms plus the bitonic sub-model for the two delegate-set
//! reductions.
//!
//! The model prices the *warm* query — the delegate index is treated as
//! already built and cached on the input buffer, the regime in which the
//! algorithm is interesting (extraction is one linear pass, amortized
//! over every query against the same buffer; a planner comparing
//! per-query costs should not charge it to each query).
//!
//! Phases priced:
//!
//! 1. **Threshold scan** — read the `c = ⌈n/s⌉` delegates once.
//! 2. **Delegate top-k** — the bitonic model over `c` items.
//! 3. **Refinement** — read `contributing · s` input items, write
//!    `contributing · k` run items. The contributing count is where the
//!    distribution enters: at most `k` subranges can contribute under
//!    any distribution without massive key duplication (each needs a
//!    delegate among the k best), but the adversarial
//!    [`ReductionProfile::BucketKiller`] collapses every delegate onto
//!    the same key, so *every* subrange survives the threshold.
//! 4. **Merge** — the bitonic model over the `contributing · k` run
//!    items (the `bitonic_topk_from_runs` pass).

use crate::bitonic::{bitonic_topk_seconds, BitonicModelInput};
use crate::radix::ReductionProfile;
use simt::DeviceSpec;

/// The modeled subrange length: the implementation's default granularity,
/// widened so a subrange always covers at least one run of `k` items.
pub fn model_subrange(k: usize) -> usize {
    2048usize.max(k.next_power_of_two())
}

/// Per-phase breakdown of the delegate-select prediction — the shape the
/// query layer's EXPLAIN renders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelegatePhases {
    /// Modeled subrange (delegate granularity) length.
    pub subrange: usize,
    /// Number of subranges (= delegates), `⌈n/s⌉`.
    pub num_subranges: usize,
    /// Expected number of subranges surviving the threshold.
    pub contributing: usize,
    /// Phase 1: delegate read + threshold scan.
    pub scan_seconds: f64,
    /// Phase 2: bitonic top-k over the delegate set.
    pub delegate_topk_seconds: f64,
    /// Phase 3: rescan of contributing subranges into padded runs.
    pub refine_seconds: f64,
    /// Phase 4: bitonic merge of the runs.
    pub merge_seconds: f64,
    /// Sum of all phases.
    pub total_seconds: f64,
}

/// Prices warm delegate select phase by phase.
///
/// `conflict_degree` feeds the bitonic sub-model exactly as in
/// [`bitonic_topk_seconds`]; `elems_per_thread` likewise (16 is the
/// shipped configuration).
pub fn delegate_select_phases(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
    elems_per_thread: usize,
    conflict_degree: f64,
) -> DelegatePhases {
    let s = model_subrange(k);
    let c = n.div_ceil(s).max(1);
    let k_del = k.min(c);
    // every contributing subrange needs its delegate among the k best;
    // the bucket-killer distribution defeats the threshold entirely
    let contributing = match profile {
        ReductionProfile::BucketKiller => c,
        _ => c.min(k),
    };
    let bg = spec.global_bw;
    let ib = item_bytes as f64;

    let scan_seconds = (c as f64) * ib / bg + spec.launch_overhead;
    let delegate_topk_seconds = bitonic_topk_seconds(
        spec,
        BitonicModelInput {
            n: c,
            k: k_del,
            item_bytes,
            elems_per_thread,
            conflict_degree,
        },
    );
    let read = (contributing * s) as f64 * ib;
    let write = (contributing * k) as f64 * ib;
    let refine_seconds = (read + write) / bg + spec.launch_overhead;
    let runs_len = (contributing * k).max(1);
    let merge_seconds = bitonic_topk_seconds(
        spec,
        BitonicModelInput {
            n: runs_len,
            k: k.min(runs_len),
            item_bytes,
            elems_per_thread,
            conflict_degree,
        },
    );
    let total_seconds = scan_seconds + delegate_topk_seconds + refine_seconds + merge_seconds;
    DelegatePhases {
        subrange: s,
        num_subranges: c,
        contributing,
        scan_seconds,
        delegate_topk_seconds,
        refine_seconds,
        merge_seconds,
        total_seconds,
    }
}

/// Predicted warm delegate-select time — the total of
/// [`delegate_select_phases`].
pub fn delegate_select_seconds(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
    elems_per_thread: usize,
    conflict_degree: f64,
) -> f64 {
    delegate_select_phases(
        spec,
        n,
        k,
        item_bytes,
        profile,
        elems_per_thread,
        conflict_degree,
    )
    .total_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    fn warm(n: usize, k: usize, profile: &ReductionProfile) -> f64 {
        delegate_select_seconds(&spec(), n, k, 4, profile, 16, 1.0)
    }

    #[test]
    fn phases_sum_to_total_and_are_positive() {
        let p = delegate_select_phases(
            &spec(),
            1 << 22,
            64,
            4,
            &ReductionProfile::UniformFloats,
            16,
            1.0,
        );
        for t in [
            p.scan_seconds,
            p.delegate_topk_seconds,
            p.refine_seconds,
            p.merge_seconds,
        ] {
            assert!(t > 0.0);
        }
        let sum = p.scan_seconds + p.delegate_topk_seconds + p.refine_seconds + p.merge_seconds;
        assert_eq!(sum.to_bits(), p.total_seconds.to_bits());
        assert_eq!(p.subrange, 2048);
        assert_eq!(p.num_subranges, (1usize << 22) / 2048);
        assert_eq!(p.contributing, 64);
    }

    #[test]
    fn warm_cost_beats_bitonic_at_small_k_large_n() {
        // the regime the algorithm targets: the full-input scan dwarfs
        // the delegate pipeline
        let t_del = warm(1 << 22, 64, &ReductionProfile::UniformFloats);
        let t_bit = bitonic_topk_seconds(
            &spec(),
            BitonicModelInput {
                n: 1 << 22,
                k: 64,
                item_bytes: 4,
                elems_per_thread: 16,
                conflict_degree: 1.0,
            },
        );
        assert!(
            t_del < t_bit / 2.0,
            "delegate {t_del} should win big over bitonic {t_bit}"
        );
    }

    #[test]
    fn launch_overheads_sink_it_at_small_n() {
        let t_del = warm(1 << 14, 32, &ReductionProfile::UniformFloats);
        let t_bit = bitonic_topk_seconds(
            &spec(),
            BitonicModelInput {
                n: 1 << 14,
                k: 32,
                item_bytes: 4,
                elems_per_thread: 16,
                conflict_degree: 1.0,
            },
        );
        assert!(
            t_del > t_bit,
            "fixed costs must dominate at 2^14 (delegate {t_del}, bitonic {t_bit})"
        );
    }

    #[test]
    fn bucket_killer_forces_full_refinement() {
        let uni = delegate_select_phases(
            &spec(),
            1 << 24,
            64,
            4,
            &ReductionProfile::UniformFloats,
            16,
            1.0,
        );
        let bk = delegate_select_phases(
            &spec(),
            1 << 24,
            64,
            4,
            &ReductionProfile::BucketKiller,
            16,
            1.0,
        );
        assert_eq!(bk.contributing, bk.num_subranges);
        assert!(bk.total_seconds > 5.0 * uni.total_seconds);
    }

    #[test]
    fn subrange_widens_with_k() {
        assert_eq!(model_subrange(64), 2048);
        assert_eq!(model_subrange(2048), 2048);
        assert_eq!(model_subrange(4096), 4096);
        assert_eq!(model_subrange(5000), 8192);
    }
}
