//! Extended cost models — **beyond the paper**, which models only radix
//! select and bitonic top-k (Section 7). These cover the remaining two
//! contenders so the planner can price the whole Figure 11 line-up; they
//! follow the same style (bandwidth terms + a compute term, max-composed)
//! and the same calibration constants as the simulator.

use simt::{DeviceSpec, Occupancy};

/// Input distribution classes the per-thread model distinguishes (its
/// cost is update-frequency-dependent — Figure 12a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapProfile {
    /// I.i.d. keys: update probability decays as `k/i`.
    Uniform,
    /// Sorted ascending: every element displaces the heap minimum.
    Increasing,
    /// Sorted descending: no updates after the warm-up fill.
    Decreasing,
}

/// Predicted per-thread top-k time, or `None` when the configuration
/// cannot launch (`block · k · item > 48 KB`, the Figure 11 FAIL points).
pub fn per_thread_seconds(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: HeapProfile,
) -> Option<f64> {
    // block size policy mirrors the implementation: largest power of two
    // ≤ 256 whose heap footprint fits
    let mut block = 256usize;
    while block >= spec.warp_size && block * k * item_bytes > spec.shared_mem_per_block {
        block /= 2;
    }
    if block < spec.warp_size {
        return None;
    }
    let occ = Occupancy::compute(spec, block, block * k * item_bytes, 32);
    let eff = occ.bandwidth_efficiency(spec).max(1e-3);

    let d = (n * item_bytes) as f64;
    // the launch fills half the device's thread capacity (the
    // implementation's policy), never more threads than elements
    let fill = (spec.num_sms * spec.max_warps_per_sm * spec.warp_size / 2) as f64;
    let threads = fill.min(n as f64);
    let per_thread = (n as f64 / threads).max(1.0);
    let ws = spec.warp_size as f64;
    let kf = k as f64;

    // fraction of warp iterations where any lane updates
    let hot = match profile {
        HeapProfile::Increasing => 1.0,
        HeapProfile::Decreasing => (kf / per_thread).min(1.0),
        HeapProfile::Uniform => {
            // any-lane-update until i ≈ 32k, then ~32k/i decay
            let warm = (ws * kf).min(per_thread);
            let tail = if per_thread > warm {
                warm * (per_thread / warm).ln()
            } else {
                0.0
            };
            ((warm + tail) / per_thread).min(1.0)
        }
    };
    let sift_depth = (kf.max(2.0)).log2();
    // the same 24-op sift-level constant the simulator charges
    let ops_per_elem = 2.0 + hot * (sift_depth + 1.0) * 24.0;
    let t_compute = n as f64 * ops_per_elem / spec.compute_ops_per_sec;
    let t_global = d / (spec.global_bw * eff);
    // final reduce over threads·k candidates (three streaming passes)
    let reduce = 4.0 * threads * kf * item_bytes as f64 / spec.global_bw;
    Some(t_global.max(t_compute) + reduce + 2.0 * spec.launch_overhead)
}

/// Predicted bucket select time: a min/max pass plus value-space passes
/// shrinking ~16× each (uniform values), every pass paying two streaming
/// reads and per-element atomics.
pub fn bucket_select_seconds(spec: &DeviceSpec, n: usize, item_bytes: usize, k: usize) -> f64 {
    let d0 = (n * item_bytes) as f64;
    let minmax = d0 / spec.global_bw + spec.launch_overhead;
    if k == 1 {
        return minmax; // the max is the answer (Figure 11's fast point)
    }
    let mut total = minmax;
    let mut d = d0;
    let mut elems = n as f64;
    while elems > (16 * k) as f64 {
        let t_mem = 2.0 * d / spec.global_bw + (d / 16.0) / spec.global_bw;
        let t_atomic = elems * spec.atomic_op_cost / spec.compute_ops_per_sec;
        total += t_mem.max(t_atomic) + spec.launch_overhead;
        d /= 16.0;
        elems /= 16.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn per_thread_fails_exactly_like_the_implementation() {
        assert!(per_thread_seconds(&spec(), 1 << 24, 512, 4, HeapProfile::Uniform).is_none());
        assert!(per_thread_seconds(&spec(), 1 << 24, 256, 4, HeapProfile::Uniform).is_some());
        // doubles fail earlier
        assert!(per_thread_seconds(&spec(), 1 << 24, 256, 8, HeapProfile::Uniform).is_none());
        assert!(per_thread_seconds(&spec(), 1 << 24, 128, 8, HeapProfile::Uniform).is_some());
    }

    #[test]
    fn per_thread_rises_with_k() {
        let t8 = per_thread_seconds(&spec(), 1 << 26, 8, 4, HeapProfile::Uniform).unwrap();
        let t64 = per_thread_seconds(&spec(), 1 << 26, 64, 4, HeapProfile::Uniform).unwrap();
        let t256 = per_thread_seconds(&spec(), 1 << 26, 256, 4, HeapProfile::Uniform).unwrap();
        assert!(t8 < t64 && t64 < t256, "{t8} {t64} {t256}");
    }

    #[test]
    fn sorted_input_is_much_slower_at_paper_scale() {
        let uni = per_thread_seconds(&spec(), 1 << 29, 32, 4, HeapProfile::Uniform).unwrap();
        let inc = per_thread_seconds(&spec(), 1 << 29, 32, 4, HeapProfile::Increasing).unwrap();
        let dec = per_thread_seconds(&spec(), 1 << 29, 32, 4, HeapProfile::Decreasing).unwrap();
        assert!(
            inc > 2.0 * uni,
            "Figure 12a: sorted ~3x worse (inc={inc}, uni={uni})"
        );
        assert!(dec <= uni);
    }

    #[test]
    fn bucket_select_k1_is_one_scan() {
        let s = spec();
        let t = bucket_select_seconds(&s, 1 << 26, 4, 1);
        let scan = ((1u64 << 26) * 4) as f64 / s.global_bw;
        assert!((t - scan - s.launch_overhead).abs() < 1e-9);
    }

    #[test]
    fn bucket_select_slower_than_radix_select() {
        let s = spec();
        let tb = bucket_select_seconds(&s, 1 << 26, 4, 32);
        let tr = crate::radix_select_seconds(&s, 1 << 26, 4, &crate::ReductionProfile::UniformInts);
        assert!(tb > tr, "bucket {tb} should trail radix {tr} (atomics)");
    }

    #[test]
    fn models_track_simulator_ordering_at_k32() {
        // predicted ordering at 2^22, k=32 must match Figure 11a's
        // measured ordering: bitonic < per-thread < bucket ≈ radix < sort
        let s = spec();
        let n = 1 << 22;
        let bitonic =
            crate::bitonic_topk_seconds(&s, crate::BitonicModelInput::with_defaults(n, 32, 4));
        let pt = per_thread_seconds(&s, n, 32, 4, HeapProfile::Uniform).unwrap();
        let bucket = bucket_select_seconds(&s, n, 4, 32);
        let sort = crate::sort_seconds(&s, n, 4);
        assert!(bitonic < pt, "bitonic {bitonic} < per-thread {pt}");
        assert!(pt < bucket, "per-thread {pt} < bucket {bucket}");
        assert!(bucket < sort, "bucket {bucket} < sort {sort}");
    }
}
