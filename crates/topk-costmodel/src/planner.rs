//! The planner use case of Section 7: given `(n, k, key width)`, predict
//! which top-k implementation a query optimizer should pick.

use crate::bitonic::{bitonic_topk_seconds, BitonicModelInput};
use crate::radix::{radix_select_seconds, ReductionProfile};
use simt::DeviceSpec;

/// The planner's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The algorithm the planner recommends.
    pub algorithm: Algorithm,
    /// Predicted seconds for the chosen algorithm.
    pub predicted_seconds: f64,
    /// Predicted seconds for the runner-up.
    pub alternative_seconds: f64,
}

/// The two candidate implementations the paper models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's bitonic top-k (wins for small k).
    BitonicTopK,
    /// MSD radix select (wins for large k).
    RadixSelect,
}

/// Chooses between bitonic top-k and radix select from the cost models —
/// the paper's conclusion: bitonic for `k ≤ 256`, radix select beyond.
///
/// `profile` describes the expected digit distribution; use
/// [`ReductionProfile::UniformFloats`] when unknown (a conservative
/// choice: it favors radix select the least).
pub fn recommend(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
) -> Choice {
    // conflict degree rises past the k range chunk permutation covers
    let conflict_degree = if k.next_power_of_two() <= 256 {
        1.0
    } else {
        1.3
    };
    let t_bitonic = bitonic_topk_seconds(
        spec,
        BitonicModelInput {
            n,
            k,
            item_bytes,
            elems_per_thread: 16,
            conflict_degree,
        },
    );
    let t_radix = radix_select_seconds(spec, n, item_bytes, profile);
    if t_bitonic <= t_radix {
        Choice {
            algorithm: Algorithm::BitonicTopK,
            predicted_seconds: t_bitonic,
            alternative_seconds: t_radix,
        }
    } else {
        Choice {
            algorithm: Algorithm::RadixSelect,
            predicted_seconds: t_radix,
            alternative_seconds: t_bitonic,
        }
    }
}

/// A priced algorithm in the full line-up ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAlgorithm {
    /// Which algorithm this row prices.
    pub algorithm: FullAlgorithm,
    /// Predicted seconds (`None` = cannot launch at this configuration).
    pub predicted_seconds: Option<f64>,
}

/// The full Figure 11 line-up (extends the paper's two-way [`Algorithm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullAlgorithm {
    /// Sort-and-choose baseline.
    Sort,
    /// Per-thread heaps.
    PerThread,
    /// MSD radix select.
    RadixSelect,
    /// Min/max bucket select.
    BucketSelect,
    /// Bitonic top-k.
    BitonicTopK,
}

/// Prices every algorithm (the paper's two models plus the `extended`
/// ones) and returns them cheapest-first. Algorithms that cannot launch
/// (per-thread beyond its shared-memory limit) sort last with
/// `predicted_seconds = None`.
pub fn recommend_full(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
) -> Vec<RankedAlgorithm> {
    use crate::extended::{bucket_select_seconds, per_thread_seconds, HeapProfile};
    let conflict_degree = if k.next_power_of_two() <= 256 {
        1.0
    } else {
        1.3
    };
    let mut out = vec![
        RankedAlgorithm {
            algorithm: FullAlgorithm::Sort,
            predicted_seconds: Some(crate::radix::sort_seconds(spec, n, item_bytes)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::PerThread,
            predicted_seconds: per_thread_seconds(spec, n, k, item_bytes, HeapProfile::Uniform),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::RadixSelect,
            predicted_seconds: Some(radix_select_seconds(spec, n, item_bytes, profile)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::BucketSelect,
            predicted_seconds: Some(bucket_select_seconds(spec, n, item_bytes, k)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::BitonicTopK,
            predicted_seconds: Some(bitonic_topk_seconds(
                spec,
                BitonicModelInput {
                    n,
                    k,
                    item_bytes,
                    elems_per_thread: 16,
                    conflict_degree,
                },
            )),
        },
    ];
    out.sort_by(|a, b| match (a.predicted_seconds, b.predicted_seconds) {
        (Some(x), Some(y)) => x.partial_cmp(&y).expect("finite predictions"),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn small_k_picks_bitonic() {
        for k in [1usize, 32, 128, 256] {
            let c = recommend(&spec(), 1 << 28, k, 4, &ReductionProfile::UniformFloats);
            assert_eq!(c.algorithm, Algorithm::BitonicTopK, "k={k}");
            assert!(c.predicted_seconds <= c.alternative_seconds);
        }
    }

    #[test]
    fn crossover_exists_for_large_k() {
        // somewhere beyond the paper's k = 256 the planner must flip
        let flipped = [512usize, 1024, 2048, 4096].iter().any(|&k| {
            recommend(&spec(), 1 << 28, k, 4, &ReductionProfile::UniformFloats).algorithm
                == Algorithm::RadixSelect
        });
        assert!(flipped, "planner never chose radix select at large k");
    }

    #[test]
    fn bucket_killer_pushes_toward_bitonic() {
        let c = recommend(&spec(), 1 << 28, 1024, 4, &ReductionProfile::BucketKiller);
        assert_eq!(
            c.algorithm,
            Algorithm::BitonicTopK,
            "radix select degenerates on the adversarial input"
        );
    }

    #[test]
    fn full_ranking_matches_figure_11_at_k32() {
        // bitonic < per-thread < {radix, bucket} < sort at 2^26, k = 32
        let ranked = recommend_full(&spec(), 1 << 26, 32, 4, &ReductionProfile::UniformFloats);
        assert_eq!(ranked[0].algorithm, FullAlgorithm::BitonicTopK);
        assert_eq!(ranked.last().unwrap().algorithm, FullAlgorithm::Sort);
        // strictly ordered costs
        let costs: Vec<f64> = ranked.iter().filter_map(|r| r.predicted_seconds).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn full_ranking_marks_unlaunchable_per_thread() {
        let ranked = recommend_full(&spec(), 1 << 24, 512, 4, &ReductionProfile::UniformFloats);
        let pt = ranked
            .iter()
            .find(|r| r.algorithm == FullAlgorithm::PerThread)
            .unwrap();
        assert!(pt.predicted_seconds.is_none(), "k=512 cannot launch");
        assert_eq!(ranked.last().unwrap().algorithm, FullAlgorithm::PerThread);
    }

    #[test]
    fn predictions_are_positive_and_ordered() {
        let c = recommend(&spec(), 1 << 24, 64, 4, &ReductionProfile::UniformInts);
        assert!(c.predicted_seconds > 0.0);
        assert!(c.alternative_seconds >= c.predicted_seconds);
    }
}
