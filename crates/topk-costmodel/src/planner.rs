//! The planner use case of Section 7: given `(n, k, key width)`, predict
//! which top-k implementation a query optimizer should pick.

use crate::bitonic::{bitonic_topk_seconds, BitonicModelInput};
use crate::delegate::{delegate_select_seconds, model_subrange};
use crate::radix::{radix_select_seconds, ReductionProfile};
use simt::lint::{lint_geometry, LaunchGeometry, LintConfig, LintFinding, Severity};
use simt::DeviceSpec;

/// The planner's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The algorithm the planner recommends.
    pub algorithm: Algorithm,
    /// Predicted seconds for the chosen algorithm.
    pub predicted_seconds: f64,
    /// Predicted seconds for the runner-up.
    pub alternative_seconds: f64,
}

/// The candidate implementations the planner prices: the paper's two
/// models plus delegate select (Dr. Top-k).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's bitonic top-k (wins for small k at moderate n).
    BitonicTopK,
    /// MSD radix select (wins for large k).
    RadixSelect,
    /// Delegate select (wins for small k at large n, where the cached
    /// delegate index turns the full scan into a sparse refinement).
    DelegateSelect,
}

/// Prices the three candidates with one shared set of knobs, so the
/// checked and unchecked recommendation paths produce bit-identical
/// estimates. Returned in enum order: (bitonic, radix, delegate).
fn price_candidates(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
    elems_per_thread: usize,
) -> (f64, f64, f64) {
    // conflict degree rises past the k range chunk permutation covers
    let conflict_degree = if k.next_power_of_two() <= 256 {
        1.0
    } else {
        1.3
    };
    let t_bitonic = bitonic_topk_seconds(
        spec,
        BitonicModelInput {
            n,
            k,
            item_bytes,
            elems_per_thread,
            conflict_degree,
        },
    );
    let t_radix = radix_select_seconds(spec, n, item_bytes, profile);
    let t_delegate = delegate_select_seconds(
        spec,
        n,
        k,
        item_bytes,
        profile,
        elems_per_thread,
        conflict_degree,
    );
    (t_bitonic, t_radix, t_delegate)
}

/// Picks the cheapest of the priced candidates; the runner-up becomes
/// the alternative.
fn choose(t_bitonic: f64, t_radix: f64, t_delegate: f64) -> Choice {
    let mut ranked = [
        (Algorithm::BitonicTopK, t_bitonic),
        (Algorithm::RadixSelect, t_radix),
        (Algorithm::DelegateSelect, t_delegate),
    ];
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"));
    Choice {
        algorithm: ranked[0].0,
        predicted_seconds: ranked[0].1,
        alternative_seconds: ranked[1].1,
    }
}

/// Chooses among bitonic top-k, radix select, and delegate select from
/// the cost models — the paper's conclusion (bitonic for `k ≤ 256`,
/// radix select beyond) refined by the Dr. Top-k follow-up: at small k
/// over large inputs the delegate decomposition undercuts both.
///
/// `profile` describes the expected digit distribution; use
/// [`ReductionProfile::UniformFloats`] when unknown (a conservative
/// choice: it favors radix select the least). The adversarial
/// [`ReductionProfile::BucketKiller`] also prices delegate select's
/// worst case — every subrange survives the threshold — pushing the
/// choice back to bitonic.
pub fn recommend(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
) -> Choice {
    let (t_bitonic, t_radix, t_delegate) = price_candidates(spec, n, k, item_bytes, profile, 16);
    choose(t_bitonic, t_radix, t_delegate)
}

/// The launch knobs a checked recommendation would execute with. The
/// defaults are the paper's shipped configuration (B = 16 elements per
/// thread, 256-thread blocks); a query optimizer probing other points
/// feeds them here and lets the static lints veto the unlaunchable ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Threads per block for the reduction kernels.
    pub block_dim: usize,
    /// Elements each thread owns in the bitonic SortReducer.
    pub elems_per_thread: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            block_dim: 256,
            elems_per_thread: 16,
        }
    }
}

/// A configuration the planner refused: its launch plan fails hard
/// static lints and would fault at launch, so no recommendation is
/// produced. Warnings never reject — only error-severity findings do.
#[derive(Debug, Clone)]
pub struct PlanRejection {
    /// The algorithm whose launch plan failed the lints.
    pub algorithm: Algorithm,
    /// The geometry that was analyzed.
    pub geometry: LaunchGeometry,
    /// The hard findings (every entry has [`Severity::Error`]).
    pub errors: Vec<LintFinding>,
}

impl std::fmt::Display for PlanRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan rejected: `{}` (grid {} × block {}, {} B shared) fails {} hard lint{}",
            self.geometry.name,
            self.geometry.grid_dim,
            self.geometry.block_dim,
            self.geometry.shared_bytes_per_block,
            self.errors.len(),
            if self.errors.len() == 1 { "" } else { "s" },
        )?;
        for e in &self.errors {
            write!(f, "\n  {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanRejection {}

/// Derives the launch geometry the simulated implementation of `alg`
/// would use at this configuration — the same shapes the `topk` crate
/// builds, reproduced here so the planner can lint a candidate plan
/// without constructing any kernel.
fn plan_geometry(alg: Algorithm, n: usize, item_bytes: usize, cfg: &PlanConfig) -> LaunchGeometry {
    match alg {
        Algorithm::BitonicTopK => {
            // one segment of block_dim × elems_per_thread items lives in
            // shared memory, padded by 1/32 to dodge bank conflicts
            let seg = cfg.block_dim * cfg.elems_per_thread;
            let padded = seg + seg / 32;
            LaunchGeometry {
                name: "bitonic_local_sort".to_string(),
                grid_dim: n.div_ceil(seg.max(1)).max(1),
                block_dim: cfg.block_dim,
                shared_bytes_per_block: padded * item_bytes,
                regs_per_thread: 32 + cfg.elems_per_thread * item_bytes.div_ceil(4),
                low_occupancy_waiver: None,
            }
        }
        Algorithm::RadixSelect => {
            // histogram pass: 256 digit bins of u32 counts per block
            let per_block = cfg.block_dim * cfg.elems_per_thread;
            LaunchGeometry {
                name: "radix_select_hist".to_string(),
                grid_dim: n.div_ceil(per_block.max(1)).max(1),
                block_dim: cfg.block_dim,
                shared_bytes_per_block: 256 * 4,
                regs_per_thread: 24,
                low_occupancy_waiver: None,
            }
        }
        Algorithm::DelegateSelect => {
            // the binding pass is the bitonic reduction over the delegate
            // set and the refined runs — same segment shape as bitonic,
            // over the (much smaller) delegate count
            let seg = cfg.block_dim * cfg.elems_per_thread;
            let padded = seg + seg / 32;
            let c = n.div_ceil(model_subrange(1)).max(1);
            LaunchGeometry {
                name: "delegate_bitonic_reduce".to_string(),
                grid_dim: c.div_ceil(seg.max(1)).max(1),
                block_dim: cfg.block_dim,
                shared_bytes_per_block: padded * item_bytes,
                regs_per_thread: 32 + cfg.elems_per_thread * item_bytes.div_ceil(4),
                low_occupancy_waiver: None,
            }
        }
    }
}

/// [`recommend`], gated by the static launch-plan lints: prices both
/// algorithms with `cfg`'s knobs, then refuses to recommend a plan whose
/// launch geometry fails a hard lint (block over the device limit,
/// shared memory oversubscribed, …) — returning the typed
/// [`PlanRejection`] carrying the findings instead of an estimate the
/// device could never honor.
pub fn recommend_checked(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
    cfg: &PlanConfig,
) -> Result<Choice, PlanRejection> {
    let (t_bitonic, t_radix, t_delegate) =
        price_candidates(spec, n, k, item_bytes, profile, cfg.elems_per_thread);
    let choice = choose(t_bitonic, t_radix, t_delegate);
    let geometry = plan_geometry(choice.algorithm, n, item_bytes, cfg);
    let report = lint_geometry(spec, &geometry, &LintConfig::default());
    if report.error_count() > 0 {
        let errors = report
            .findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
            .cloned()
            .collect();
        return Err(PlanRejection {
            algorithm: choice.algorithm,
            geometry,
            errors,
        });
    }
    Ok(choice)
}

/// A priced algorithm in the full line-up ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAlgorithm {
    /// Which algorithm this row prices.
    pub algorithm: FullAlgorithm,
    /// Predicted seconds (`None` = cannot launch at this configuration).
    pub predicted_seconds: Option<f64>,
}

/// The full Figure 11 line-up (extends the paper's two-way [`Algorithm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullAlgorithm {
    /// Sort-and-choose baseline.
    Sort,
    /// Per-thread heaps.
    PerThread,
    /// MSD radix select.
    RadixSelect,
    /// Min/max bucket select.
    BucketSelect,
    /// Bitonic top-k.
    BitonicTopK,
    /// Delegate select (warm index).
    DelegateSelect,
}

/// Prices every algorithm (the paper's two models plus the `extended`
/// ones) and returns them cheapest-first. Algorithms that cannot launch
/// (per-thread beyond its shared-memory limit) sort last with
/// `predicted_seconds = None`.
pub fn recommend_full(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    item_bytes: usize,
    profile: &ReductionProfile,
) -> Vec<RankedAlgorithm> {
    use crate::extended::{bucket_select_seconds, per_thread_seconds, HeapProfile};
    let conflict_degree = if k.next_power_of_two() <= 256 {
        1.0
    } else {
        1.3
    };
    let mut out = vec![
        RankedAlgorithm {
            algorithm: FullAlgorithm::Sort,
            predicted_seconds: Some(crate::radix::sort_seconds(spec, n, item_bytes)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::PerThread,
            predicted_seconds: per_thread_seconds(spec, n, k, item_bytes, HeapProfile::Uniform),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::RadixSelect,
            predicted_seconds: Some(radix_select_seconds(spec, n, item_bytes, profile)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::BucketSelect,
            predicted_seconds: Some(bucket_select_seconds(spec, n, item_bytes, k)),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::BitonicTopK,
            predicted_seconds: Some(bitonic_topk_seconds(
                spec,
                BitonicModelInput {
                    n,
                    k,
                    item_bytes,
                    elems_per_thread: 16,
                    conflict_degree,
                },
            )),
        },
        RankedAlgorithm {
            algorithm: FullAlgorithm::DelegateSelect,
            predicted_seconds: Some(delegate_select_seconds(
                spec,
                n,
                k,
                item_bytes,
                profile,
                16,
                conflict_degree,
            )),
        },
    ];
    out.sort_by(|a, b| match (a.predicted_seconds, b.predicted_seconds) {
        (Some(x), Some(y)) => x.partial_cmp(&y).expect("finite predictions"),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn small_k_picks_bitonic_at_moderate_n() {
        // below the delegate break-even the paper's conclusion stands:
        // bitonic for small k
        for k in [1usize, 32, 128, 256] {
            let c = recommend(&spec(), 1 << 16, k, 4, &ReductionProfile::UniformFloats);
            assert_eq!(c.algorithm, Algorithm::BitonicTopK, "k={k}");
            assert!(c.predicted_seconds <= c.alternative_seconds);
        }
    }

    #[test]
    fn small_k_large_n_pins_delegate_select() {
        // the ISSUE-8 acceptance regime: k ≤ 64, n ≥ 2^20 must pick the
        // delegate decomposition (warm index, uniform keys)
        for log2n in [20usize, 22, 24, 28] {
            for k in [1usize, 16, 64] {
                let c = recommend(&spec(), 1 << log2n, k, 4, &ReductionProfile::UniformFloats);
                assert_eq!(c.algorithm, Algorithm::DelegateSelect, "n=2^{log2n} k={k}");
                assert!(c.predicted_seconds <= c.alternative_seconds);
            }
        }
    }

    #[test]
    fn crossover_exists_for_large_k() {
        // somewhere beyond the paper's k = 256 the planner must flip to
        // radix select (2^22: large enough that bitonic's shared-memory
        // sorting hurts, small enough that the delegate set is too
        // coarse to help at k in the thousands)
        assert_eq!(
            recommend(&spec(), 1 << 22, 32, 4, &ReductionProfile::UniformInts).algorithm,
            Algorithm::DelegateSelect
        );
        let flipped = [512usize, 1024, 2048, 4096].iter().any(|&k| {
            recommend(&spec(), 1 << 22, k, 4, &ReductionProfile::UniformInts).algorithm
                == Algorithm::RadixSelect
        });
        assert!(flipped, "planner never chose radix select at large k");
    }

    #[test]
    fn bucket_killer_pushes_away_from_radix() {
        // the adversarial distribution degenerates radix select's pass
        // reduction, and forces delegate select into full refinement —
        // its prediction must degrade by orders of magnitude vs uniform
        let c = recommend(&spec(), 1 << 28, 1024, 4, &ReductionProfile::BucketKiller);
        assert_ne!(
            c.algorithm,
            Algorithm::RadixSelect,
            "radix select degenerates on the adversarial input"
        );
        let uni = recommend(&spec(), 1 << 28, 1024, 4, &ReductionProfile::UniformFloats);
        assert!(
            c.predicted_seconds > 10.0 * uni.predicted_seconds,
            "the adversary must erase the delegate shortcut ({} vs {})",
            c.predicted_seconds,
            uni.predicted_seconds
        );
    }

    #[test]
    fn full_ranking_matches_figure_11_at_k32() {
        // delegate < bitonic < per-thread < {radix, bucket} < sort at
        // 2^26, k = 32 (Figure 11 order, with the warm delegate index
        // undercutting everything)
        let ranked = recommend_full(&spec(), 1 << 26, 32, 4, &ReductionProfile::UniformFloats);
        assert_eq!(ranked[0].algorithm, FullAlgorithm::DelegateSelect);
        assert_eq!(ranked[1].algorithm, FullAlgorithm::BitonicTopK);
        assert_eq!(ranked.last().unwrap().algorithm, FullAlgorithm::Sort);
        // strictly ordered costs
        let costs: Vec<f64> = ranked.iter().filter_map(|r| r.predicted_seconds).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn full_ranking_marks_unlaunchable_per_thread() {
        let ranked = recommend_full(&spec(), 1 << 24, 512, 4, &ReductionProfile::UniformFloats);
        let pt = ranked
            .iter()
            .find(|r| r.algorithm == FullAlgorithm::PerThread)
            .unwrap();
        assert!(pt.predicted_seconds.is_none(), "k=512 cannot launch");
        assert_eq!(ranked.last().unwrap().algorithm, FullAlgorithm::PerThread);
    }

    #[test]
    fn checked_recommendation_matches_unchecked_on_sane_config() {
        let c = recommend_checked(
            &spec(),
            1 << 24,
            32,
            4,
            &ReductionProfile::UniformFloats,
            &PlanConfig::default(),
        )
        .expect("the shipped configuration must lint clean");
        let u = recommend(&spec(), 1 << 24, 32, 4, &ReductionProfile::UniformFloats);
        assert_eq!(c.algorithm, u.algorithm);
        assert_eq!(c.predicted_seconds.to_bits(), u.predicted_seconds.to_bits());
    }

    #[test]
    fn planner_refuses_oversized_block_with_typed_error() {
        let cfg = PlanConfig {
            block_dim: 4096, // titan x caps threads per block at 1024
            elems_per_thread: 16,
        };
        let err = recommend_checked(
            &spec(),
            1 << 24,
            32,
            4,
            &ReductionProfile::UniformFloats,
            &cfg,
        )
        .expect_err("a 4096-thread block cannot launch");
        assert!(!err.errors.is_empty());
        assert!(err
            .errors
            .iter()
            .all(|f| f.severity() == simt::lint::Severity::Error));
        assert!(err
            .errors
            .iter()
            .any(|f| f.kind == simt::lint::LintKind::BlockTooLarge));
        assert_eq!(err.geometry.block_dim, 4096);
        let msg = err.to_string();
        assert!(msg.contains("plan rejected"), "{msg}");
        assert!(msg.contains("launch.block-too-large"), "{msg}");
    }

    #[test]
    fn planner_refuses_shared_memory_oversubscription() {
        let cfg = PlanConfig {
            block_dim: 256,
            elems_per_thread: 256, // 64 K items/segment => ~264 KB shared
        };
        let err = recommend_checked(
            &spec(),
            1 << 24,
            32,
            4,
            &ReductionProfile::UniformFloats,
            &cfg,
        )
        .expect_err("segment cannot fit in shared memory");
        assert!(err
            .errors
            .iter()
            .any(|f| f.kind == simt::lint::LintKind::SharedMemExceeded));
        // at 2^24 / k=32 the cheapest plan is delegate select, whose
        // binding reduction kernel has the same segment-in-shared shape
        assert_eq!(err.algorithm, Algorithm::DelegateSelect);
    }

    #[test]
    fn predictions_are_positive_and_ordered() {
        let c = recommend(&spec(), 1 << 24, 64, 4, &ReductionProfile::UniformInts);
        assert!(c.predicted_seconds > 0.0);
        assert!(c.alternative_seconds >= c.predicted_seconds);
    }
}
