//! Property-based validation of the warp-lockstep replay: for arbitrary
//! access patterns, the simulator's coalescing and bank-conflict counters
//! must equal an independently computed brute-force reference.

use proptest::prelude::*;
use simt::{BlockCtx, Device, DeviceSpec, GpuBuffer, Kernel, KernelStats, Occupancy};

/// A kernel where each lane performs a scripted list of shared-memory
/// word accesses (one per slot).
struct ScriptedShared {
    /// `pattern[lane][slot]` = shared word index.
    pattern: Vec<Vec<u32>>,
    words: usize,
}

impl Kernel for ScriptedShared {
    fn name(&self) -> &'static str {
        "scripted_shared"
    }
    fn block_dim(&self) -> usize {
        self.pattern.len()
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<f32>(self.words);
        blk.step(|lane| {
            for &w in &self.pattern[lane.tid()] {
                let _ = lane.sread(h, w as usize);
            }
        });
    }
}

/// Brute-force reference: group by (warp, slot), count distinct words per
/// bank, sum the max (degree) per group.
fn reference_shared(pattern: &[Vec<u32>], warp: usize, banks: usize) -> KernelStats {
    let mut stats = KernelStats::default();
    let warps = pattern.len().div_ceil(warp);
    for w in 0..warps {
        let lanes = &pattern[w * warp..((w + 1) * warp).min(pattern.len())];
        let max_slots = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
        for slot in 0..max_slots {
            let mut words: Vec<u32> = lanes.iter().filter_map(|l| l.get(slot).copied()).collect();
            if words.is_empty() {
                continue;
            }
            stats.shared_accesses += words.len() as u64;
            words.sort_unstable();
            words.dedup();
            let mut per_bank = vec![0u64; banks];
            for w in words {
                per_bank[w as usize % banks] += 1;
            }
            let degree = *per_bank.iter().max().unwrap();
            stats.shared_eff_bytes += degree * 32 * 4;
            if degree > 1 {
                stats.shared_conflict_groups += 1;
                stats.shared_conflict_cycles += degree - 1;
            }
        }
    }
    stats
}

/// Scripted global reads: one address list per lane.
struct ScriptedGlobal {
    pattern: Vec<Vec<u32>>,
    buf: GpuBuffer<f32>,
}

impl Kernel for ScriptedGlobal {
    fn name(&self) -> &'static str {
        "scripted_global"
    }
    fn block_dim(&self) -> usize {
        self.pattern.len()
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        blk.step(|lane| {
            for &i in &self.pattern[lane.tid()] {
                let _ = lane.gread(&self.buf, i as usize);
            }
        });
    }
}

fn reference_global_bytes(pattern: &[Vec<u32>], warp: usize, base: u64) -> u64 {
    let mut bytes = 0u64;
    let warps = pattern.len().div_ceil(warp);
    for w in 0..warps {
        let lanes = &pattern[w * warp..((w + 1) * warp).min(pattern.len())];
        let max_slots = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
        for slot in 0..max_slots {
            let mut sectors: Vec<u64> = lanes
                .iter()
                .filter_map(|l| l.get(slot).map(|&i| (base + i as u64 * 4) / 32))
                .collect();
            sectors.sort_unstable();
            sectors.dedup();
            bytes += 32 * sectors.len() as u64;
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shared_replay_matches_bruteforce(
        pattern in prop::collection::vec(
            prop::collection::vec(0u32..512, 0..6),
            1..96,
        )
    ) {
        let dev = Device::new(DeviceSpec::titan_x_maxwell());
        let k = ScriptedShared { pattern: pattern.clone(), words: 512 };
        let r = dev.launch(&k).unwrap();
        let expect = reference_shared(&pattern, 32, 32);
        prop_assert_eq!(r.stats.shared_accesses, expect.shared_accesses);
        prop_assert_eq!(r.stats.shared_eff_bytes, expect.shared_eff_bytes);
        prop_assert_eq!(r.stats.shared_conflict_cycles, expect.shared_conflict_cycles);
        prop_assert_eq!(r.stats.shared_conflict_groups, expect.shared_conflict_groups);
    }

    #[test]
    fn global_replay_matches_bruteforce(
        pattern in prop::collection::vec(
            prop::collection::vec(0u32..4096, 0..5),
            1..96,
        )
    ) {
        let dev = Device::new(DeviceSpec::titan_x_maxwell());
        let buf = dev.alloc::<f32>(4096);
        let base = buf.base_addr();
        let k = ScriptedGlobal { pattern: pattern.clone(), buf };
        let r = dev.launch(&k).unwrap();
        prop_assert_eq!(
            r.stats.global_read_bytes,
            reference_global_bytes(&pattern, 32, base)
        );
    }

    #[test]
    fn occupancy_is_monotone_in_shared_usage(
        block in prop::sample::select(vec![32usize, 64, 128, 256, 512]),
        s1 in 0usize..48 * 1024,
        s2 in 0usize..48 * 1024,
    ) {
        let spec = DeviceSpec::titan_x_maxwell();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let o_lo = Occupancy::compute(&spec, block, lo, 32);
        let o_hi = Occupancy::compute(&spec, block, hi, 32);
        prop_assert!(o_lo.occupancy >= o_hi.occupancy);
        prop_assert!(o_lo.bandwidth_efficiency(&spec) >= o_hi.bandwidth_efficiency(&spec));
    }

    #[test]
    fn timing_is_monotone_in_traffic(extra in 0u64..10_000_000) {
        struct Bulk { bytes: u64 }
        impl Kernel for Bulk {
            fn name(&self) -> &'static str { "bulk" }
            fn block_dim(&self) -> usize { 256 }
            fn grid_dim(&self) -> usize { 1 }
            fn run_block(&self, blk: &mut BlockCtx) {
                blk.bulk_global_read(self.bytes);
            }
        }
        let dev = Device::new(DeviceSpec::titan_x_maxwell());
        let t1 = dev.launch(&Bulk { bytes: 1_000_000 }).unwrap().time;
        let t2 = dev.launch(&Bulk { bytes: 1_000_000 + extra }).unwrap().time;
        prop_assert!(t2.seconds() >= t1.seconds());
    }
}
