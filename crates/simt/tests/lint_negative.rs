//! Negative coverage for `simt::lint`: deliberately broken launch plans
//! must each trip the *exact* lint kind with kernel/phase attribution —
//! oversubscribed shared memory, a mis-declared stride caught by the
//! sanitizer cross-check, a barrier declared inside a divergent branch,
//! and a statically provable out-of-bounds index.

use simt::lint::{
    cross_check, lint_kernel, AccessSpec, BufferDecl, GlobalStream, LintConfig, LintKind,
    PhaseSpec, Severity,
};
use simt::{BlockCtx, Device, DeviceSpec, GpuBuffer, Kernel, Lane};

type LaneBody = Box<dyn Fn(&mut Lane<'_>)>;

/// A configurable kernel whose contract and behavior the tests bend.
struct Probe {
    name: &'static str,
    grid: usize,
    block: usize,
    shared_bytes: usize,
    spec: Option<AccessSpec>,
    body: Option<LaneBody>,
}

impl Probe {
    fn plan_only(name: &'static str, grid: usize, block: usize) -> Self {
        Probe {
            name,
            grid,
            block,
            shared_bytes: 0,
            spec: None,
            body: None,
        }
    }
}

impl Kernel for Probe {
    fn name(&self) -> &'static str {
        self.name
    }
    fn grid_dim(&self) -> usize {
        self.grid
    }
    fn block_dim(&self) -> usize {
        self.block
    }
    fn shared_bytes_per_block(&self) -> usize {
        self.shared_bytes
    }
    fn access_spec(&self) -> Option<AccessSpec> {
        self.spec.clone()
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let body = self
            .body
            .as_ref()
            .expect("plan-only probes are never launched");
        blk.step(|l| body(l));
    }
}

fn titan() -> DeviceSpec {
    DeviceSpec::titan_x_maxwell()
}

fn errors_of(report: &simt::LintReport, kind: LintKind) -> Vec<simt::lint::LintFinding> {
    report
        .findings
        .iter()
        .filter(|f| f.kind == kind)
        .cloned()
        .collect()
}

#[test]
fn oversubscribed_shared_memory_is_a_hard_error() {
    let spec = titan();
    let mut probe = Probe::plan_only("shm_hog", 4, 256);
    probe.shared_bytes = spec.shared_mem_per_block + 1;
    let report = lint_kernel(&spec, &probe, &LintConfig::default());
    let hits = errors_of(&report, LintKind::SharedMemExceeded);
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert_eq!(hits[0].severity(), Severity::Error);
    assert_eq!(hits[0].kernel, "shm_hog", "kernel attribution");
    assert!(hits[0].phase.is_empty(), "launch-wide, not phase-scoped");
    assert!(
        hits[0]
            .detail
            .contains(&spec.shared_mem_per_block.to_string()),
        "detail names the limit: {}",
        hits[0].detail
    );
    assert!(!report.is_clean());
    assert!(report.error_count() >= 1);
}

#[test]
fn oversized_block_is_a_hard_error() {
    let spec = titan();
    let probe = Probe::plan_only("wide_block", 1, spec.max_threads_per_block * 2);
    let report = lint_kernel(&spec, &probe, &LintConfig::default());
    let hits = errors_of(&report, LintKind::BlockTooLarge);
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert_eq!(hits[0].kernel, "wide_block");
}

#[test]
fn misdeclared_stride_trips_the_cross_check() {
    // the kernel reads contiguously (lane t -> element t) but its
    // contract claims a 32-element stride: the static prediction is
    // internally consistent and in bounds, so only the dynamic
    // cross-check can catch the lie — as spec.mismatch
    let dev = Device::titan_x();
    dev.enable_lint();
    let buf: GpuBuffer<u32> = dev.upload(&vec![7u32; 1024]);
    let decl = BufferDecl::of("input", &buf);
    let lying_spec = AccessSpec {
        phases: vec![PhaseSpec {
            name: "scan".to_string(),
            globals: vec![GlobalStream {
                buf: decl,
                write: false,
                base: 0,
                lane_stride: 32, // actual kernel uses stride 1
                slot_stride: 0,
                slots: 1,
                block_stride: 0,
                active: 32,
                bound: None,
            }],
            ..PhaseSpec::default()
        }],
    };
    let body = {
        let buf = buf.clone();
        Box::new(move |l: &mut Lane<'_>| {
            let t = l.tid();
            let _ = l.gread(&buf, t);
        })
    };
    let probe = Probe {
        name: "stride_liar",
        grid: 1,
        block: 32,
        shared_bytes: 0,
        spec: Some(lying_spec),
        body: Some(body),
    };
    let launch = dev.launch(&probe).unwrap();
    let reports = dev.take_lint_reports();
    assert_eq!(reports.len(), 1);
    // the plan itself lints clean: the lie is only visible dynamically
    assert_eq!(reports[0].error_count(), 0, "{}", reports[0].render());
    let mismatch = cross_check(&reports[0], &launch.stats)
        .expect("mis-declared stride must produce a spec.mismatch finding");
    assert_eq!(mismatch.kind, LintKind::SpecMismatch);
    assert_eq!(mismatch.severity(), Severity::Error);
    assert_eq!(mismatch.kernel, "stride_liar");
    // strided-by-32 predicts one sector per access; contiguous measures 1/8
    assert!(
        mismatch.detail.contains("disagrees"),
        "detail explains the drift: {}",
        mismatch.detail
    );
}

#[test]
fn truthful_spec_passes_the_same_cross_check() {
    // control for the stride test: the same kernel with an honest
    // contract survives cross_check
    let dev = Device::titan_x();
    dev.enable_lint();
    let buf: GpuBuffer<u32> = dev.upload(&vec![7u32; 1024]);
    let decl = BufferDecl::of("input", &buf);
    let honest = AccessSpec {
        phases: vec![PhaseSpec {
            name: "scan".to_string(),
            globals: vec![GlobalStream {
                buf: decl,
                write: false,
                base: 0,
                lane_stride: 1,
                slot_stride: 0,
                slots: 1,
                block_stride: 0,
                active: 32,
                bound: None,
            }],
            ..PhaseSpec::default()
        }],
    };
    let body = {
        let buf = buf.clone();
        Box::new(move |l: &mut Lane<'_>| {
            let t = l.tid();
            let _ = l.gread(&buf, t);
        })
    };
    let probe = Probe {
        name: "stride_honest",
        grid: 1,
        block: 32,
        shared_bytes: 0,
        spec: Some(honest),
        body: Some(body),
    };
    let launch = dev.launch(&probe).unwrap();
    let reports = dev.take_lint_reports();
    assert!(reports[0].is_clean(), "{}", reports[0].render());
    assert!(cross_check(&reports[0], &launch.stats).is_none());
}

#[test]
fn barrier_in_divergent_branch_is_a_hard_error_with_phase_attribution() {
    let spec = titan();
    let mut probe = Probe::plan_only("divergent_sync", 1, 64);
    probe.spec = Some(AccessSpec {
        phases: vec![
            PhaseSpec::named("setup"),
            PhaseSpec {
                name: "tail".to_string(),
                divergent_barrier: Some("step() reached only by lanes with tid < 16".to_string()),
                ..PhaseSpec::default()
            },
        ],
    });
    let report = lint_kernel(&spec, &probe, &LintConfig::default());
    let hits = errors_of(&report, LintKind::BarrierInDivergence);
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert_eq!(hits[0].severity(), Severity::Error);
    assert_eq!(hits[0].kernel, "divergent_sync");
    assert_eq!(hits[0].phase, "tail", "attributed to the divergent phase");
    assert!(hits[0].detail.contains("tid < 16"), "{}", hits[0].detail);
}

#[test]
fn statically_provable_oob_index_is_a_hard_error() {
    let spec = titan();
    let dev = Device::titan_x();
    let buf: GpuBuffer<u32> = dev.upload(&vec![0u32; 100]);
    let decl = BufferDecl::of("out", &buf);
    let mut probe = Probe::plan_only("oob_writer", 2, 64);
    // block 1, lane 63 writes element 64 + 63 = 127 >= len 100
    probe.spec = Some(AccessSpec {
        phases: vec![PhaseSpec {
            name: "store".to_string(),
            globals: vec![GlobalStream {
                buf: decl,
                write: true,
                base: 0,
                lane_stride: 1,
                slot_stride: 0,
                slots: 1,
                block_stride: 64,
                active: 64,
                bound: None,
            }],
            ..PhaseSpec::default()
        }],
    });
    let report = lint_kernel(&spec, &probe, &LintConfig::default());
    let hits = errors_of(&report, LintKind::GlobalOutOfBounds);
    assert!(!hits.is_empty(), "{}", report.render());
    assert_eq!(hits[0].kernel, "oob_writer");
    assert_eq!(hits[0].phase, "store", "attributed to the writing phase");
    assert!(
        hits[0].detail.contains("out"),
        "detail names the buffer: {}",
        hits[0].detail
    );
}
