//! Adversarial kernels for `simt::sanitize`: each deliberately defective
//! kernel must produce the expected finding kind with correct step and
//! lane attribution (no false negatives), and the known-clean kernel must
//! produce zero findings (no false positives).

use proptest::prelude::*;
use simt::{BlockCtx, Device, FindingKind, GpuBuffer, Kernel};

/// The classic broken bitonic exchange: compare-exchange pairs read and
/// write their partner's slot inside ONE barrier interval. The simulator
/// picks a lane order and "works"; hardware would be nondeterministic.
struct RacyExchange {
    block_dim: usize,
    stride: usize,
}

impl Kernel for RacyExchange {
    fn name(&self) -> &'static str {
        "racy_exchange"
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        self.block_dim * 4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<u32>(self.block_dim);
        // step 0: init every slot
        blk.step(|l| {
            let t = l.tid();
            l.swrite(h, t, (t as u32).wrapping_mul(2654435761));
        });
        // step 1: read own + partner, write own — all in one step (BUG:
        // the partner read and the partner's write to its slot race)
        let d = self.stride;
        blk.step(|l| {
            let t = l.tid();
            let p = t ^ d;
            let a = l.sread(h, t);
            let b = l.sread(h, p);
            l.swrite(h, t, a.max(b));
        });
    }
}

/// Scatter with an out-of-bounds tail: lane `t` writes `out[t * stride]`,
/// which runs past the buffer for large `t`.
struct OobScatter {
    out: GpuBuffer<u32>,
    stride: usize,
}

impl Kernel for OobScatter {
    fn name(&self) -> &'static str {
        "oob_scatter"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let stride = self.stride;
        let out = self.out.clone();
        blk.step(|l| {
            let t = l.tid();
            l.gwrite(&out, t * stride, t as u32 + 1);
        });
    }
}

/// Shared scan that reads the upper half of its staging buffer before
/// anything ever wrote it (the default-fill masks the garbage that would
/// be observed on silicon).
struct ReadBeforeWriteScan {
    block_dim: usize,
}

impl Kernel for ReadBeforeWriteScan {
    fn name(&self) -> &'static str {
        "rbw_scan"
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        2 * self.block_dim * 4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bd = self.block_dim;
        let h = blk.alloc_shared::<u32>(2 * bd);
        blk.step(|l| {
            let t = l.tid();
            l.swrite(h, t, t as u32);
        });
        let mut sums = vec![0u32; bd];
        blk.step(|l| {
            let t = l.tid();
            // the lower-half read is initialized (written in step 0);
            // the upper-half read never was — initcheck must fire there
            sums[t] = l.sread(h, t).wrapping_add(l.sread(h, bd + t));
        });
    }
}

/// A correct barrier-disciplined exchange: reads and writes live in
/// separate steps, every lane writes only its own slot, and global
/// traffic is unit-stride — nothing for any analysis to flag.
struct CleanExchange {
    input: GpuBuffer<u32>,
    out: GpuBuffer<u32>,
    block_dim: usize,
    stride: usize,
}

impl Kernel for CleanExchange {
    fn name(&self) -> &'static str {
        "clean_exchange"
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        self.block_dim * 4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let bd = self.block_dim;
        let h = blk.alloc_shared::<u32>(bd);
        let input = self.input.clone();
        let out = self.out.clone();
        blk.step(|l| {
            let t = l.tid();
            let v = l.gread(&input, t);
            l.swrite(h, t, v);
        });
        // read phase and write phase in separate barrier intervals
        let mut regs = vec![0u32; bd];
        let d = self.stride;
        blk.step(|l| {
            let t = l.tid();
            let a = l.sread(h, t);
            let b = l.sread(h, t ^ d);
            regs[t] = if t & d == 0 { a.max(b) } else { a.min(b) };
        });
        blk.step(|l| {
            let t = l.tid();
            l.swrite(h, t, regs[t]);
        });
        blk.step(|l| {
            let t = l.tid();
            let v = l.sread(h, t);
            l.gwrite(&out, t, v);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sanitizer_catches_racy_bitonic_exchange(
        bd in prop::sample::select(vec![32usize, 64, 128]),
        stride in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
    ) {
        let dev = Device::titan_x();
        let (_, rep) = dev
            .launch_sanitized(&RacyExchange { block_dim: bd, stride })
            .unwrap();
        let races = rep.findings_of(FindingKind::SharedRace);
        prop_assert_eq!(races.len(), bd, "one race per shared word");
        for f in races {
            prop_assert_eq!(f.step, 1, "race is in the exchange step");
            // the flagged word is written by exactly its own lane
            prop_assert_eq!(f.lane as u64, f.address);
            prop_assert!(f.allocation.contains("shared #0"), "{}", f.allocation);
        }
        // init step + separate-lane ownership elsewhere: no other errors
        prop_assert_eq!(rep.error_count(), bd);
    }

    #[test]
    fn sanitizer_catches_oob_scatter(
        len in 8usize..48,
        stride in 2usize..8,
    ) {
        let dev = Device::titan_x();
        let out = dev.alloc::<u32>(len);
        let (_, rep) = dev.launch_sanitized(&OobScatter { out: out.clone(), stride }).unwrap();
        let oob = rep.findings_of(FindingKind::GlobalOutOfBounds);
        let first_offender = len.div_ceil(stride);
        prop_assert_eq!(oob.len(), 32 - first_offender, "one finding per offending lane's index");
        prop_assert_eq!(oob[0].step, 0);
        prop_assert_eq!(oob[0].lane, first_offender, "attributed to the first offending lane");
        prop_assert!(oob[0].allocation.contains("GpuBuffer<u32>"), "{}", oob[0].allocation);
        // in-bounds writes landed; the faulting ones were skipped
        prop_assert_eq!(out.get(0), 1);
        prop_assert_eq!(rep.error_count(), oob.len());
    }

    #[test]
    fn sanitizer_catches_read_before_write_scan(
        bd in prop::sample::select(vec![32usize, 64, 128]),
    ) {
        let dev = Device::titan_x();
        let (_, rep) = dev
            .launch_sanitized(&ReadBeforeWriteScan { block_dim: bd })
            .unwrap();
        let uninit = rep.findings_of(FindingKind::UninitializedRead);
        prop_assert_eq!(uninit.len(), bd, "every upper-half word flagged");
        prop_assert_eq!(uninit[0].step, 1, "flagged in the scan step");
        prop_assert_eq!(uninit[0].lane, 0);
        prop_assert_eq!(uninit[0].address, bd as u64, "first unwritten word");
        prop_assert_eq!(rep.error_count(), bd, "the written lower half is not flagged");
    }

    #[test]
    fn sanitizer_clean_kernel_has_zero_findings(
        bd in prop::sample::select(vec![32usize, 64, 128, 256]),
        stride in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
    ) {
        let dev = Device::titan_x();
        let data: Vec<u32> = (0..bd as u32).map(|i| i.wrapping_mul(48271)).collect();
        let input = dev.upload(&data);
        let out = dev.alloc::<u32>(bd);
        let (_, rep) = dev
            .launch_sanitized(&CleanExchange { input, out, block_dim: bd, stride })
            .unwrap();
        prop_assert!(rep.is_clean(), "false positives:\n{}", rep.render());
    }
}

/// Same buffer written by every block: the cross-block write-conflict
/// side of racecheck.
struct CrossBlockWriter {
    out: GpuBuffer<u32>,
}

impl Kernel for CrossBlockWriter {
    fn name(&self) -> &'static str {
        "cross_block_writer"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let out = self.out.clone();
        let b = blk.block_idx as u32;
        blk.step(move |l| {
            let t = l.tid();
            l.gwrite(&out, t, b);
        });
    }
}

#[test]
fn sanitizer_catches_cross_block_global_write_conflict() {
    let dev = Device::titan_x();
    let out = dev.alloc::<u32>(32);
    let (_, rep) = dev.launch_sanitized(&CrossBlockWriter { out }).unwrap();
    let races = rep.findings_of(FindingKind::GlobalRace);
    assert_eq!(races.len(), 32, "every word has a conflicting writer");
    assert_eq!(races[0].block, 1, "flagged at the second writing block");
    assert_eq!(
        races[0].occurrences, 3,
        "blocks 1..=3 all conflict with block 0"
    );
    assert!(
        races[0].detail.contains("inter-block"),
        "{}",
        races[0].detail
    );
}

#[test]
fn sanitizer_device_mode_covers_streamed_launches() {
    let dev = Device::titan_x();
    dev.enable_sanitizer();
    let st = dev.create_stream();
    let out = dev.alloc::<u32>(32);
    dev.stream_scope(st.id(), || {
        dev.launch(&OobScatter {
            out: out.clone(),
            stride: 4,
        })
        .unwrap();
    });
    dev.disable_sanitizer();
    // disabled: no report for this launch
    dev.launch(&OobScatter { out, stride: 1 }).unwrap();

    let reports = dev.sanitizer_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].stream, st.id().0, "stream id stamped");
    assert!(reports[0].error_count() > 0);
    // the per-stream view sees the same report
    let via_stream = st.sanitizer_reports();
    assert_eq!(via_stream.len(), 1);
    assert_eq!(via_stream[0].kernel, "oob_scatter");
    // draining empties the log
    assert_eq!(dev.take_sanitizer_reports().len(), 1);
    assert!(dev.sanitizer_reports().is_empty());
}

/// Unsanitized OOB must panic (bounds checks are always-on now, even in
/// release builds — this test runs in the CI `--release` sanitizer job).
struct UntrackedOob;

impl Kernel for UntrackedOob {
    fn name(&self) -> &'static str {
        "untracked_oob"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        64
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<u32>(16);
        blk.step(|l| {
            l.swrite_untracked(h, 16 + l.tid(), 7);
        });
    }
}

#[test]
#[should_panic(expected = "memcheck: shared write out of bounds")]
fn sanitizer_untracked_oob_panics_without_sanitizer() {
    let _ = Device::titan_x().launch(&UntrackedOob);
}

#[test]
fn sanitizer_untracked_accesses_are_not_a_blind_spot() {
    // the same kernel under the sanitizer: structured finding, no panic
    let dev = Device::titan_x();
    let (_, rep) = dev.launch_sanitized(&UntrackedOob).unwrap();
    let oob = rep.findings_of(FindingKind::SharedOutOfBounds);
    assert_eq!(oob.len(), 32);
    assert_eq!(oob[0].lane, 0);
    assert!(
        oob[0].detail.contains("index 16 >= len 16"),
        "{}",
        oob[0].detail
    );
}

/// Tracked shared OOB panics with the structured memcheck message when no
/// sanitizer is attached (the old `debug_assert!` is now always-on).
struct TrackedSharedOob;

impl Kernel for TrackedSharedOob {
    fn name(&self) -> &'static str {
        "tracked_shared_oob"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        64
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<u32>(16);
        blk.step(|l| {
            let _ = l.sread(h, 99);
        });
    }
}

#[test]
#[should_panic(expected = "memcheck: shared read out of bounds")]
fn sanitizer_tracked_oob_panics_without_sanitizer() {
    let _ = Device::titan_x().launch(&TrackedSharedOob);
}

/// Racecheck also sees the untracked accessors: two lanes write the same
/// word through `swrite_untracked` in one step.
struct UntrackedRace;

impl Kernel for UntrackedRace {
    fn name(&self) -> &'static str {
        "untracked_race"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        64
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<u32>(16);
        blk.step(|l| {
            l.swrite_untracked(h, l.tid() / 2, 1);
        });
    }
}

#[test]
fn sanitizer_untracked_races_detected() {
    let dev = Device::titan_x();
    let (report, srep) = dev.launch_sanitized(&UntrackedRace).unwrap();
    assert_eq!(
        srep.findings_of(FindingKind::SharedRace).len(),
        16,
        "lanes 2t and 2t+1 collide on word t:\n{}",
        srep.render()
    );
    // untracked accesses stay invisible to the traffic model
    assert_eq!(report.stats.shared_accesses, 0);
}

/// Strided global reads: every lane its own sector — the uncoalesced
/// perf lint must fire; and a stride-`banks` shared pattern must trip the
/// bank-conflict lint.
struct PerfHostile {
    input: GpuBuffer<u32>,
}

impl Kernel for PerfHostile {
    fn name(&self) -> &'static str {
        "perf_hostile"
    }
    fn block_dim(&self) -> usize {
        32
    }
    fn grid_dim(&self) -> usize {
        1
    }
    fn shared_bytes_per_block(&self) -> usize {
        32 * 32 * 4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let h = blk.alloc_shared::<u32>(32 * 32);
        let input = self.input.clone();
        blk.step(|l| {
            let t = l.tid();
            let v = l.gread(&input, t * 32); // 128 B apart: 32 sectors
            l.swrite(h, t * 32, v); // all lanes hit bank 0: degree 32
        });
    }
}

#[test]
fn sanitizer_perf_lints_fire_and_are_warnings() {
    let dev = Device::titan_x();
    let input = dev.alloc::<u32>(32 * 32);
    let (_, rep) = dev.launch_sanitized(&PerfHostile { input }).unwrap();
    assert_eq!(rep.error_count(), 0, "{}", rep.render());
    assert_eq!(rep.findings_of(FindingKind::UncoalescedGlobal).len(), 1);
    let bank = rep.findings_of(FindingKind::BankConflict);
    assert_eq!(bank.len(), 1);
    assert!(bank[0].detail.contains("32-way"), "{}", bank[0].detail);
    let json = rep.to_json();
    assert!(json.contains("perf.bank-conflict"), "{json}");
}
