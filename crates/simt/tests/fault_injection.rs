//! The fault-injection layer's contract: deterministic, attributable,
//! opt-in, and invisible when the plan is all-zero.

use simt::block::BlockCtx;
use simt::{Device, FaultKind, FaultPlan, GpuBuffer, Kernel, LaunchError, SimTime};

/// Doubles every element, one block-stride pass.
struct DoubleKernel {
    data: GpuBuffer<f32>,
}

impl Kernel for DoubleKernel {
    fn name(&self) -> &'static str {
        "double"
    }
    fn block_dim(&self) -> usize {
        64
    }
    fn grid_dim(&self) -> usize {
        4
    }
    fn run_block(&self, blk: &mut BlockCtx) {
        let n = self.data.len();
        let total = self.grid_dim() * self.block_dim();
        let mut iters = 0usize;
        let mut base = blk.block_idx * self.block_dim();
        while base < n {
            iters += 1;
            base += total;
        }
        for it in 0..iters {
            blk.step(|l| {
                let i = l.gtid() + it * total;
                if i < n {
                    let v = l.gread(&self.data, i);
                    l.gwrite(&self.data, i, v * 2.0);
                    l.ops(1);
                }
            });
        }
    }
}

fn input(dev: &Device, n: usize) -> GpuBuffer<f32> {
    dev.upload(&(0..n).map(|i| i as f32).collect::<Vec<_>>())
}

#[test]
fn all_zero_plan_is_bit_identical_to_no_plan() {
    let clean = {
        let dev = Device::titan_x();
        let data = input(&dev, 4096);
        for _ in 0..5 {
            dev.launch(&DoubleKernel { data: data.clone() }).unwrap();
        }
        (
            dev.launch_log()
                .iter()
                .map(|r| r.time.0.to_bits())
                .collect::<Vec<_>>(),
            data.to_vec(),
        )
    };
    let planned = {
        let dev = Device::titan_x();
        dev.set_fault_plan(FaultPlan::none());
        assert!(!dev.fault_plan_active(), "all-zero plan cannot fire");
        let data = input(&dev, 4096);
        data.tag_ecc("test:data");
        for _ in 0..5 {
            dev.launch(&DoubleKernel { data: data.clone() }).unwrap();
        }
        assert!(dev.fault_events().is_empty());
        (
            dev.launch_log()
                .iter()
                .map(|r| r.time.0.to_bits())
                .collect::<Vec<_>>(),
            data.to_vec(),
        )
    };
    assert_eq!(clean, planned, "all-zero plan must not perturb anything");
}

#[test]
fn launch_failure_fires_with_attribution() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    dev.set_fault_plan(FaultPlan {
        launch_failure_rate: 1.0,
        ..FaultPlan::with_seed(7)
    });
    assert!(dev.fault_plan_active());
    let err = dev
        .launch(&DoubleKernel { data: data.clone() })
        .unwrap_err();
    assert_eq!(err, LaunchError::DeviceFault { kernel: "double" });
    assert!(err.is_transient());
    // the data is untouched and no launch was logged
    assert_eq!(data.get(3), 3.0);
    assert_eq!(dev.log_len(), 0);
    let events = dev.fault_events();
    assert_eq!(events.len(), 1);
    let e = &events[0];
    assert_eq!(e.kind, FaultKind::LaunchFailure);
    assert_eq!(e.kernel, "double");
    assert_eq!(e.launch_index, 0);
    assert_eq!(e.stream, 0);
    assert!(e.step < 8);
    assert!(e.lane < 64);
    assert!(e.render().contains("launch-failure"));
}

#[test]
fn stall_inflates_modeled_time_by_the_plan_delay() {
    let clean = {
        let dev = Device::titan_x();
        let data = input(&dev, 4096);
        dev.launch(&DoubleKernel { data }).unwrap().time
    };
    let dev = Device::titan_x();
    let data = input(&dev, 4096);
    let delay = SimTime(250e-6);
    dev.set_fault_plan(FaultPlan {
        stall_rate: 1.0,
        stall_delay: delay,
        ..FaultPlan::with_seed(7)
    });
    let stalled = dev.launch(&DoubleKernel { data }).unwrap();
    assert_eq!(
        stalled.time.0.to_bits(),
        (clean.0 + delay.0).to_bits(),
        "stall adds exactly the plan delay"
    );
    // the logged report carries the stalled time too
    assert_eq!(dev.launch_log()[0].time, stalled.time);
    let events = dev.fault_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, FaultKind::StreamStall);
}

#[test]
fn corruption_hits_only_tagged_buffers() {
    // untagged: corruption rolls fire but have no target — data intact,
    // no event recorded
    let dev = Device::titan_x();
    let data = input(&dev, 256);
    dev.set_fault_plan(FaultPlan {
        corruption_rate: 1.0,
        ..FaultPlan::with_seed(3)
    });
    dev.launch(&DoubleKernel { data: data.clone() }).unwrap();
    assert!(dev.fault_events().is_empty());
    assert_eq!(data.get(100), 200.0);

    // tagged: one element is reset to default and the event names the tag
    let dev = Device::titan_x();
    let data = input(&dev, 256);
    data.tag_ecc("test:victim");
    dev.set_fault_plan(FaultPlan {
        corruption_rate: 1.0,
        ..FaultPlan::with_seed(3)
    });
    dev.launch(&DoubleKernel { data: data.clone() }).unwrap();
    let events = dev.fault_events();
    assert_eq!(events.len(), 1);
    let e = &events[0];
    assert_eq!(e.kind, FaultKind::MemoryCorruption);
    assert_eq!(e.target.as_deref(), Some("test:victim"));
    let host = data.to_vec();
    let zeroed = host.iter().filter(|v| **v == 0.0).count();
    // element 0 doubles to 0.0 anyway; exactly one other element was reset
    assert_eq!(zeroed, 2, "exactly one element corrupted to default");
    assert!(e.detail.contains("reset to default"));
}

#[test]
fn dropped_buffers_are_never_corrupted() {
    let dev = Device::titan_x();
    {
        let doomed = input(&dev, 64);
        doomed.tag_ecc("test:doomed");
    }
    let data = input(&dev, 256);
    dev.set_fault_plan(FaultPlan {
        corruption_rate: 1.0,
        ..FaultPlan::with_seed(3)
    });
    dev.launch(&DoubleKernel { data }).unwrap();
    // the only tag is dead: the roll fires but nothing can be hit
    assert!(dev.fault_events().is_empty());
}

#[test]
fn oom_injection_only_reaches_fallible_allocations() {
    let dev = Device::titan_x();
    dev.set_fault_plan(FaultPlan {
        oom_rate: 1.0,
        ..FaultPlan::with_seed(5)
    });
    // panicking paths bypass injection entirely
    let _a = dev.alloc::<f32>(1024);
    let _b = dev.upload(&[1u32; 16]);
    let _c = dev.alloc_filled(16, 0u8);
    assert!(dev.fault_events().is_empty());
    // fallible paths see the injected failure
    let err = dev.try_alloc::<f32>(1024).unwrap_err();
    assert_eq!(err.requested, 4096);
    assert!(err.in_use < err.capacity, "capacity was not actually short");
    assert!(dev.try_upload(&[1u32; 16]).is_err());
    assert!(dev.try_alloc_filled(16, 0u8).is_err());
    let events = dev.fault_events();
    assert_eq!(events.len(), 3);
    assert!(events.iter().all(|e| e.kind == FaultKind::AllocOom));
    assert!(events.iter().all(|e| e.kernel == "alloc"));
}

#[test]
fn same_seed_fires_the_same_faults() {
    let run = || {
        let dev = Device::titan_x();
        let data = input(&dev, 1024);
        data.tag_ecc("test:data");
        dev.set_fault_plan(FaultPlan::uniform(42, 0.3));
        let mut outcomes = Vec::new();
        for _ in 0..20 {
            outcomes.push(dev.launch(&DoubleKernel { data: data.clone() }).is_ok());
            outcomes.push(dev.try_alloc::<u32>(64).is_ok());
        }
        (outcomes, dev.fault_events())
    };
    let (a_out, a_ev) = run();
    let (b_out, b_ev) = run();
    assert_eq!(a_out, b_out);
    assert_eq!(a_ev, b_ev, "identical plans fire identical faults");
    assert!(!a_ev.is_empty(), "rate 0.3 over 40 rolls must fire");
}

#[test]
fn max_faults_caps_total_injections() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    dev.set_fault_plan(FaultPlan {
        launch_failure_rate: 1.0,
        max_faults: 2,
        ..FaultPlan::with_seed(1)
    });
    let mut failures = 0;
    for _ in 0..10 {
        if dev.launch(&DoubleKernel { data: data.clone() }).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 2, "cap bounds injected faults");
    assert_eq!(dev.fault_events_len(), 2);
}

#[test]
fn clear_fault_plan_stops_injection_and_keeps_events() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    dev.set_fault_plan(FaultPlan {
        launch_failure_rate: 1.0,
        ..FaultPlan::with_seed(9)
    });
    assert!(dev.launch(&DoubleKernel { data: data.clone() }).is_err());
    dev.clear_fault_plan();
    assert!(!dev.fault_plan_active());
    assert!(dev.launch(&DoubleKernel { data }).is_ok());
    assert_eq!(dev.fault_events_len(), 1);
    assert_eq!(dev.take_fault_events().len(), 1);
    assert!(dev.fault_events().is_empty());
}

#[test]
fn fault_plan_down_at_kills_the_device_permanently() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    dev.set_fault_plan(FaultPlan::down_at(SimTime::ZERO));
    assert!(dev.is_down(), "down-at zero fires before any launch");
    let err = dev
        .launch(&DoubleKernel { data: data.clone() })
        .unwrap_err();
    assert_eq!(err, LaunchError::DeviceDown { kernel: "double" });
    assert!(!err.is_transient(), "device loss must not be retried");
    // the loss is latched: repeated launches keep failing but the
    // transition records exactly one event
    assert!(dev.launch(&DoubleKernel { data }).is_err());
    let events = dev.fault_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, FaultKind::DeviceDown);
    assert!(events[0].render().contains("device-down"));
}

#[test]
fn fault_budget_downs_the_device_after_the_transient_allowance() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    dev.set_fault_plan(FaultPlan {
        launch_failure_rate: 1.0,
        down_after_faults: Some(2),
        ..FaultPlan::with_seed(11)
    });
    // the first two failures are transient launch drops
    for _ in 0..2 {
        let err = dev
            .launch(&DoubleKernel { data: data.clone() })
            .unwrap_err();
        assert!(err.is_transient());
    }
    // the budget is spent: the device is permanently down
    assert!(dev.is_down());
    let err = dev.launch(&DoubleKernel { data }).unwrap_err();
    assert_eq!(err, LaunchError::DeviceDown { kernel: "double" });
    let kinds: Vec<_> = dev.fault_events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            FaultKind::LaunchFailure,
            FaultKind::LaunchFailure,
            FaultKind::DeviceDown
        ]
    );
}

#[test]
fn transfers_touching_a_downed_device_fault_permanently() {
    use simt::topology::{Cluster, ClusterSpec};
    let cluster = Cluster::new(ClusterSpec::pcie_node(2));
    cluster.device(1).mark_down();
    assert!(cluster.device(1).is_down());

    // both directions into the dead device reject with attribution
    let err = cluster
        .host_to_device(1, 4096, "load", SimTime::ZERO)
        .unwrap_err();
    assert!(err.permanent);
    assert_eq!(err.device, 1);
    assert!(err.to_string().contains("permanently down"));
    let err = cluster
        .device_to_device(0, 1, 4096, "replicate", SimTime::ZERO)
        .unwrap_err();
    assert!(err.permanent);
    assert_eq!(err.device, 1);

    // the healthy device keeps serving; no RNG words were drawn for the
    // rejections, so its fault stream stays empty
    assert!(cluster
        .host_to_device(0, 4096, "load", SimTime::ZERO)
        .is_ok());
    assert!(cluster.device(0).fault_events().is_empty());
}

#[test]
fn stream_fault_events_filter_by_stream() {
    let dev = Device::titan_x();
    let data = input(&dev, 1024);
    let s1 = dev.create_stream();
    let s2 = dev.create_stream();
    dev.set_fault_plan(FaultPlan {
        launch_failure_rate: 1.0,
        max_faults: 1,
        ..FaultPlan::with_seed(2)
    });
    let r = dev.stream_scope(s1.id(), || dev.launch(&DoubleKernel { data: data.clone() }));
    assert!(r.is_err());
    assert_eq!(s1.fault_events().len(), 1);
    assert_eq!(s1.fault_events()[0].stream, s1.id().0);
    assert!(s2.fault_events().is_empty());
}
