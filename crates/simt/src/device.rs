//! The simulated device: buffer allocation, kernel launch, and the
//! bandwidth-based timing model.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::block::BlockCtx;
use crate::buffer::{DeviceCopy, GpuBuffer};
use crate::fault::{attribute, EccTarget, FaultEvent, FaultKind, FaultPlan, FaultState};
use crate::lint::{self, AccessSpec, LintConfig, LintReport, StaticPrediction};
use crate::occupancy::Occupancy;
use crate::sanitize::{LaunchSanitizer, SanitizeConfig, SanitizerReport};
use crate::spec::DeviceSpec;
use crate::stats::{KernelStats, SimTime};
use crate::stream::{self, Stream, StreamId, StreamSchedule, WaitEdge};

/// A GPU kernel.
///
/// `run_block` is invoked once per block of the grid; blocks are
/// independent (no cross-block synchronization within a launch), exactly
/// as on real hardware.
pub trait Kernel {
    /// Kernel name for reports.
    fn name(&self) -> &'static str;

    /// Threads per block.
    fn block_dim(&self) -> usize;

    /// Blocks in the grid.
    fn grid_dim(&self) -> usize;

    /// Declared shared memory per block, bytes (drives occupancy and the
    /// launch-limit check).
    fn shared_bytes_per_block(&self) -> usize {
        0
    }

    /// Declared registers per thread (drives occupancy).
    fn regs_per_thread(&self) -> usize {
        32
    }

    /// Justification for a launch configuration whose occupancy the
    /// sanitizer's perf lint would otherwise flag (see
    /// [`crate::sanitize`]). Kernels whose low occupancy is inherent to
    /// the algorithm — the paper's per-thread top-k trades resident warps
    /// for shared-memory heap capacity (Section 4.1) — return a reason;
    /// the lint is then recorded as waived instead of as a finding.
    fn low_occupancy_waiver(&self) -> Option<&'static str> {
        None
    }

    /// The kernel's declared access contract for static analysis (see
    /// [`crate::lint`]). `None` disables the spec-driven checks; the
    /// lint then only validates launch geometry and occupancy and
    /// records a `spec.missing` warning.
    fn access_spec(&self) -> Option<AccessSpec> {
        None
    }

    /// Executes one block.
    fn run_block(&self, blk: &mut BlockCtx);
}

/// Device memory exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the failed allocation asked for.
    pub requested: usize,
    /// Bytes already allocated on the device.
    pub in_use: usize,
    /// Device memory capacity.
    pub capacity: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Errors a launch can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The block's declared shared memory exceeds the per-block limit —
    /// the failure mode of per-thread top-k for k ≥ 512 (Section 6.2).
    SharedMemoryExceeded {
        /// Bytes of shared memory the kernel declared.
        requested: usize,
        /// The per-block limit.
        limit: usize,
    },
    /// Block dimension over the device limit.
    BlockTooLarge {
        /// Threads per block requested.
        requested: usize,
        /// The device's maximum.
        limit: usize,
    },
    /// Empty grid or block.
    EmptyLaunch,
    /// An injected transient device fault (see [`crate::fault`]): the
    /// launch was valid but the fault plan failed it before any block
    /// ran. Unlike the configuration errors above, retrying the same
    /// launch may succeed.
    DeviceFault {
        /// Kernel whose launch was failed.
        kernel: &'static str,
    },
    /// The device is permanently down (see [`crate::fault`]'s device-down
    /// failure domain and [`Device::mark_down`]): every launch on it is
    /// rejected and will keep being rejected. Non-transient — retrying
    /// cannot succeed; callers must fail over to another device.
    DeviceDown {
        /// Kernel whose launch was rejected.
        kernel: &'static str,
    },
}

impl LaunchError {
    /// True for faults a caller may sensibly retry ([`LaunchError::DeviceFault`]);
    /// the configuration errors are permanent for a given launch shape,
    /// and [`LaunchError::DeviceDown`] is permanent for the device itself.
    pub fn is_transient(&self) -> bool {
        matches!(self, LaunchError::DeviceFault { .. })
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemoryExceeded { requested, limit } => write!(
                f,
                "shared memory per block {requested} B exceeds device limit {limit} B"
            ),
            LaunchError::BlockTooLarge { requested, limit } => {
                write!(f, "block dim {requested} exceeds device limit {limit}")
            }
            LaunchError::EmptyLaunch => write!(f, "grid and block dims must be nonzero"),
            LaunchError::DeviceFault { kernel } => {
                write!(f, "injected device fault failed launch of `{kernel}`")
            }
            LaunchError::DeviceDown { kernel } => {
                write!(
                    f,
                    "device is permanently down; launch of `{kernel}` rejected"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Everything known about one kernel launch: counters, occupancy, and the
/// modeled time decomposition.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub name: &'static str,
    /// Stream the launch was issued on (0 = the default stream).
    pub stream: usize,
    /// Blocks launched.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Aggregated machine counters.
    pub stats: KernelStats,
    /// Residency of this configuration.
    pub occupancy: Occupancy,
    /// Time if the kernel were purely global-memory bound.
    pub t_global: SimTime,
    /// Time if purely shared-memory bound.
    pub t_shared: SimTime,
    /// Time if purely compute bound (includes atomics).
    pub t_compute: SimTime,
    /// Modeled kernel time: `max(t_global, t_shared, t_compute) + overhead`.
    pub time: SimTime,
    /// Static counter prediction from the kernel's [`AccessSpec`],
    /// populated only when the device's lint capture is enabled (see
    /// [`Device::enable_lint`]) and the kernel declares a spec.
    pub static_pred: Option<StaticPrediction>,
}

impl LaunchReport {
    /// Which resource the kernel is bound by.
    pub fn bound_by(&self) -> &'static str {
        if self.t_global.0 >= self.t_shared.0 && self.t_global.0 >= self.t_compute.0 {
            "global"
        } else if self.t_shared.0 >= self.t_compute.0 {
            "shared"
        } else {
            "compute"
        }
    }
}

/// Aggregate view over a window of launches — the per-run metric set the
/// benchmark harness records (total modeled time, merged machine
/// counters, and a time-weighted occupancy), retrievable from the plain
/// launch log without enabling the sanitizer.
#[derive(Debug, Clone, Default)]
pub struct LaunchWindow {
    /// Launches in the window.
    pub launches: usize,
    /// Total modeled time of the window's launches.
    pub time: SimTime,
    /// Machine counters merged across the window.
    pub stats: KernelStats,
    /// Occupancy averaged over launches, weighted by each launch's
    /// modeled time (0 when the window is empty).
    pub time_weighted_occupancy: f64,
    /// Static predictions summed across the window — `Some` only when
    /// every launch in the window carries one (lint capture was on and
    /// every kernel declared an [`AccessSpec`]).
    pub static_pred: Option<StaticPrediction>,
}

impl LaunchWindow {
    /// Aggregates a slice of launch reports — e.g. `TopKResult::reports`
    /// or a `Device::log_since` window.
    pub fn from_reports(reports: &[LaunchReport]) -> Self {
        let mut w = LaunchWindow {
            launches: reports.len(),
            ..LaunchWindow::default()
        };
        let mut occ_time = 0.0;
        let mut preds = StaticPrediction::default();
        let mut all_pred = !reports.is_empty();
        for r in reports {
            w.time += r.time;
            w.stats.merge(&r.stats);
            occ_time += r.occupancy.occupancy * r.time.seconds();
            match &r.static_pred {
                Some(p) => preds.merge(p),
                None => all_pred = false,
            }
        }
        if w.time.seconds() > 0.0 {
            w.time_weighted_occupancy = occ_time / w.time.seconds();
        }
        if all_pred {
            w.static_pred = Some(preds);
        }
        w
    }
}

pub(crate) struct DeviceInner {
    spec: DeviceSpec,
    mem_allocated: Cell<usize>,
    mem_highwater: Cell<usize>,
    next_base: Cell<u64>,
    log: RefCell<Vec<LaunchReport>>,
    /// Stream subsequent launches are stamped with (set via
    /// [`Device::stream_scope`]).
    pub(crate) cur_stream: Cell<usize>,
    /// Next id handed out by [`Device::create_stream`].
    pub(crate) next_stream: Cell<usize>,
    /// Cross-stream ordering constraints recorded by events.
    pub(crate) waits: RefCell<Vec<WaitEdge>>,
    /// When set, every launch runs under the sanitizer with this config.
    sanitize: RefCell<Option<SanitizeConfig>>,
    /// One report per sanitized launch, in launch order.
    san_reports: RefCell<Vec<SanitizerReport>>,
    /// When set, every launch plan is statically linted with this config
    /// before the kernel runs (see [`crate::lint`]).
    lint: RefCell<Option<LintConfig>>,
    /// One report per linted launch, in launch order.
    lint_reports: RefCell<Vec<LintReport>>,
    /// When set, launches and fallible allocations roll against this
    /// fault plan (see [`crate::fault`]).
    fault: RefCell<Option<FaultState>>,
    /// Every injected fault, in firing order.
    fault_events: RefCell<Vec<FaultEvent>>,
    /// Buffers opted in to ECC-corruption injection.
    ecc_targets: RefCell<Vec<EccTarget>>,
    /// Permanent device-down latch: set by a fault plan's down trigger
    /// or [`Device::mark_down`], never cleared (device loss is final).
    down: Cell<bool>,
    /// Host→device ingest transfers charged via [`Device::ingest_transfer`]
    /// (streaming appends), in charge order.
    ingests: RefCell<Vec<IngestRecord>>,
}

/// One host→device ingest transfer charged against this device by a
/// streaming append (see [`Device::ingest_transfer`]). Single-device
/// tables have no [`crate::topology::Cluster`] to route transfers
/// through, so the device itself keeps this ledger; clustered appends
/// charge real [`crate::topology::Cluster::transfer`]s instead.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRecord {
    /// What was appended (e.g. `append:batch3`).
    pub label: String,
    /// Payload size on the wire.
    pub bytes: usize,
    /// Modeled PCIe 3.0 x16 transfer time for the payload.
    pub time: SimTime,
}

impl DeviceInner {
    pub(crate) fn claim_address_range(&self, bytes: usize) -> u64 {
        let base = self.next_base.get();
        // keep buffers 4 KiB-aligned and disjoint so sectors never alias
        let aligned = (bytes as u64).div_ceil(4096) * 4096 + 4096;
        self.next_base.set(base + aligned);
        base
    }

    pub(crate) fn acquire_bytes(&self, bytes: usize) {
        let cur = self.mem_allocated.get() + bytes;
        self.mem_allocated.set(cur);
        if cur > self.mem_highwater.get() {
            self.mem_highwater.set(cur);
        }
    }

    pub(crate) fn release_bytes(&self, bytes: usize) {
        self.mem_allocated.set(self.mem_allocated.get() - bytes);
    }

    pub(crate) fn log_len(&self) -> usize {
        self.log.borrow().len()
    }

    /// Sanitizer reports for launches stamped with `stream` (the hook
    /// `Stream::sanitizer_reports` uses).
    pub(crate) fn stream_san_reports(&self, stream: usize) -> Vec<SanitizerReport> {
        self.san_reports
            .borrow()
            .iter()
            .filter(|r| r.stream == stream)
            .cloned()
            .collect()
    }

    /// Fault events for launches stamped with `stream` (the hook
    /// `Stream::fault_events` uses).
    pub(crate) fn stream_fault_events(&self, stream: usize) -> Vec<FaultEvent> {
        self.fault_events
            .borrow()
            .iter()
            .filter(|e| e.stream == stream)
            .cloned()
            .collect()
    }

    /// Registers a buffer for ECC-corruption injection (the hook
    /// `GpuBuffer::tag_ecc` uses). Dead targets are pruned first so the
    /// registry stays bounded by the number of live tagged buffers.
    pub(crate) fn register_ecc_target(&self, target: EccTarget) {
        let mut targets = self.ecc_targets.borrow_mut();
        targets.retain(|t| (t.alive)());
        targets.push(target);
    }

    /// Rolls the launch-failure fault for `kernel`; true when the launch
    /// must fail with [`LaunchError::DeviceFault`].
    fn inject_launch_failure(&self, kernel: &'static str, block_dim: usize) -> bool {
        let mut fault = self.fault.borrow_mut();
        let Some(st) = fault.as_mut() else {
            return false;
        };
        let rate = st.plan.launch_failure_rate;
        let Some(w) = st.roll(rate) else {
            return false;
        };
        let (step, lane) = attribute(w, block_dim);
        self.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::LaunchFailure,
            kernel: kernel.to_string(),
            launch_index: self.log_len(),
            stream: self.cur_stream.get(),
            step,
            lane,
            target: None,
            detail: "launch failed before any block ran".to_string(),
        });
        true
    }

    /// Rolls the stream-stall fault; returns the modeled delay to add to
    /// the completed launch's time.
    fn inject_stall(&self, kernel: &'static str, block_dim: usize) -> Option<SimTime> {
        let mut fault = self.fault.borrow_mut();
        let st = fault.as_mut()?;
        let rate = st.plan.stall_rate;
        let w = st.roll(rate)?;
        let delay = st.plan.stall_delay;
        let (step, lane) = attribute(w, block_dim);
        self.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::StreamStall,
            kernel: kernel.to_string(),
            launch_index: self.log_len(),
            stream: self.cur_stream.get(),
            step,
            lane,
            target: None,
            detail: format!("stalled {delay}"),
        });
        Some(delay)
    }

    /// Rolls the ECC-corruption fault after a completed launch: one
    /// element of one live tagged buffer is overwritten with its default
    /// value. A no-op when no tagged buffer is alive.
    fn inject_corruption(&self, kernel: &'static str, block_dim: usize) {
        let w = {
            let mut fault = self.fault.borrow_mut();
            let Some(st) = fault.as_mut() else { return };
            let rate = st.plan.corruption_rate;
            let Some(w) = st.roll(rate) else { return };
            w
        };
        let mut targets = self.ecc_targets.borrow_mut();
        targets.retain(|t| (t.alive)());
        if targets.is_empty() {
            return;
        }
        let pick = (w as usize) % targets.len();
        let t = &targets[pick];
        let Some(elem) = (t.corrupt)(w >> 16) else {
            return;
        };
        let (step, lane) = attribute(w, block_dim);
        self.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::MemoryCorruption,
            kernel: kernel.to_string(),
            launch_index: self.log_len(),
            stream: self.cur_stream.get(),
            step,
            lane,
            target: Some(t.label.clone()),
            detail: format!("element {elem} reset to default"),
        });
    }

    /// Rolls the allocation-OOM fault; true when a fallible allocation
    /// of `bytes` must fail despite available capacity.
    fn inject_alloc_oom(&self, bytes: usize) -> bool {
        let mut fault = self.fault.borrow_mut();
        let Some(st) = fault.as_mut() else {
            return false;
        };
        let rate = st.plan.oom_rate;
        let Some(w) = st.roll(rate) else {
            return false;
        };
        let (step, lane) = attribute(w, 1);
        self.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::AllocOom,
            kernel: "alloc".to_string(),
            launch_index: self.log_len(),
            stream: self.cur_stream.get(),
            step,
            lane,
            target: None,
            detail: format!("allocation of {bytes} B failed"),
        });
        true
    }
}

/// The simulated GPU.
///
/// Owns the spec, tracks device-memory usage, and keeps a log of every
/// launch so multi-kernel algorithms can report end-to-end simulated time.
pub struct Device {
    inner: Rc<DeviceInner>,
}

impl Device {
    /// Creates a device with the given hardware parameters.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            inner: Rc::new(DeviceInner {
                spec,
                mem_allocated: Cell::new(0),
                mem_highwater: Cell::new(0),
                next_base: Cell::new(0x1000),
                log: RefCell::new(Vec::new()),
                cur_stream: Cell::new(0),
                next_stream: Cell::new(1),
                waits: RefCell::new(Vec::new()),
                sanitize: RefCell::new(None),
                san_reports: RefCell::new(Vec::new()),
                lint: RefCell::new(None),
                lint_reports: RefCell::new(Vec::new()),
                fault: RefCell::new(None),
                fault_events: RefCell::new(Vec::new()),
                ecc_targets: RefCell::new(Vec::new()),
                down: Cell::new(false),
                ingests: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The device the paper benchmarks on.
    pub fn titan_x() -> Self {
        Self::new(DeviceSpec::titan_x_maxwell())
    }

    /// The device's hardware parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// Allocates a zero/default-initialized buffer of `n` elements.
    ///
    /// # Panics
    /// If device memory is exhausted — use [`Device::try_alloc`] for a
    /// recoverable path (the chunked out-of-core top-k does).
    pub fn alloc<T: DeviceCopy>(&self, n: usize) -> GpuBuffer<T> {
        self.alloc_uninjected(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible allocation respecting the device memory capacity. Also
    /// the injection point for [`crate::FaultPlan::oom_rate`] — only
    /// callers that already handle [`OutOfMemory`] see injected failures.
    pub fn try_alloc<T: DeviceCopy>(&self, n: usize) -> Result<GpuBuffer<T>, OutOfMemory> {
        self.injected_oom(n * std::mem::size_of::<T>())?;
        self.alloc_uninjected(n)
    }

    fn alloc_uninjected<T: DeviceCopy>(&self, n: usize) -> Result<GpuBuffer<T>, OutOfMemory> {
        self.check_capacity(n * std::mem::size_of::<T>())?;
        Ok(GpuBuffer::new(
            Rc::clone(&self.inner),
            vec![T::default(); n],
        ))
    }

    /// Allocates a buffer initialized from a host slice.
    ///
    /// # Panics
    /// On device memory exhaustion (see [`Device::try_upload`]).
    pub fn upload<T: DeviceCopy>(&self, host: &[T]) -> GpuBuffer<T> {
        self.upload_uninjected(host)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible upload respecting the device memory capacity; injected
    /// OOM faults fire here (see [`Device::try_alloc`]).
    pub fn try_upload<T: DeviceCopy>(&self, host: &[T]) -> Result<GpuBuffer<T>, OutOfMemory> {
        self.injected_oom(std::mem::size_of_val(host))?;
        self.upload_uninjected(host)
    }

    fn upload_uninjected<T: DeviceCopy>(&self, host: &[T]) -> Result<GpuBuffer<T>, OutOfMemory> {
        self.check_capacity(std::mem::size_of_val(host))?;
        Ok(GpuBuffer::new(Rc::clone(&self.inner), host.to_vec()))
    }

    /// Allocates a buffer filled with `v`.
    ///
    /// # Panics
    /// On device memory exhaustion.
    pub fn alloc_filled<T: DeviceCopy>(&self, n: usize, v: T) -> GpuBuffer<T> {
        self.check_capacity(n * std::mem::size_of::<T>())
            .unwrap_or_else(|e| panic!("{e}"));
        GpuBuffer::new(Rc::clone(&self.inner), vec![v; n])
    }

    /// Fallible fill-allocation; injected OOM faults fire here (see
    /// [`Device::try_alloc`]).
    pub fn try_alloc_filled<T: DeviceCopy>(
        &self,
        n: usize,
        v: T,
    ) -> Result<GpuBuffer<T>, OutOfMemory> {
        let bytes = n * std::mem::size_of::<T>();
        self.injected_oom(bytes)?;
        self.check_capacity(bytes)?;
        Ok(GpuBuffer::new(Rc::clone(&self.inner), vec![v; n]))
    }

    fn injected_oom(&self, bytes: usize) -> Result<(), OutOfMemory> {
        if self.inner.inject_alloc_oom(bytes) {
            return Err(OutOfMemory {
                requested: bytes,
                in_use: self.inner.mem_allocated.get(),
                capacity: self.inner.spec.global_mem_bytes,
            });
        }
        Ok(())
    }

    fn check_capacity(&self, bytes: usize) -> Result<(), OutOfMemory> {
        let in_use = self.inner.mem_allocated.get();
        let capacity = self.inner.spec.global_mem_bytes;
        if in_use + bytes > capacity {
            return Err(OutOfMemory {
                requested: bytes,
                in_use,
                capacity,
            });
        }
        Ok(())
    }

    /// Currently allocated device bytes.
    pub fn memory_allocated(&self) -> usize {
        self.inner.mem_allocated.get()
    }

    /// High-water mark of device memory over the device's lifetime (reset
    /// with [`Device::reset_memory_highwater`]).
    pub fn memory_highwater(&self) -> usize {
        self.inner.mem_highwater.get()
    }

    /// Resets the high-water mark to the current allocation.
    pub fn reset_memory_highwater(&self) {
        self.inner.mem_highwater.set(self.inner.mem_allocated.get());
    }

    /// Launches a kernel, executing every block and deriving modeled time.
    pub fn launch<K: Kernel>(&self, kernel: &K) -> Result<LaunchReport, LaunchError> {
        if self.is_down() {
            return Err(LaunchError::DeviceDown {
                kernel: kernel.name(),
            });
        }
        let spec = self.inner.spec;
        let block_dim = kernel.block_dim();
        let grid_dim = kernel.grid_dim();
        if block_dim == 0 || grid_dim == 0 {
            return Err(LaunchError::EmptyLaunch);
        }
        if block_dim > spec.max_threads_per_block {
            return Err(LaunchError::BlockTooLarge {
                requested: block_dim,
                limit: spec.max_threads_per_block,
            });
        }
        let shared = kernel.shared_bytes_per_block();
        if shared > spec.shared_mem_per_block {
            return Err(LaunchError::SharedMemoryExceeded {
                requested: shared,
                limit: spec.shared_mem_per_block,
            });
        }
        if self.inner.inject_launch_failure(kernel.name(), block_dim) {
            return Err(LaunchError::DeviceFault {
                kernel: kernel.name(),
            });
        }

        // static analysis runs on the launch *plan*, before any block
        // executes; it records findings + the counter prediction but
        // never changes the launch outcome (the planner is the reject
        // point, see crate::lint)
        let static_pred = {
            let lint_cfg = self.inner.lint.borrow().clone();
            lint_cfg.map(|cfg| {
                let rep = lint::lint_kernel(&spec, kernel, &cfg);
                let pred = rep.prediction;
                self.inner.lint_reports.borrow_mut().push(rep);
                pred
            })
        }
        .flatten();

        let san = self
            .inner
            .sanitize
            .borrow()
            .clone()
            .map(|cfg| Rc::new(RefCell::new(LaunchSanitizer::new(cfg, kernel.name()))));

        let mut stats = KernelStats::default();
        for b in 0..grid_dim {
            let mut ctx = BlockCtx::new(spec, b, grid_dim, block_dim);
            if let Some(s) = &san {
                s.borrow_mut().begin_block(b);
                ctx.set_sanitizer(Rc::clone(s));
            }
            kernel.run_block(&mut ctx);
            stats.merge(&ctx.take_stats());
        }

        let occupancy = Occupancy::compute(&spec, block_dim, shared, kernel.regs_per_thread());
        if let Some(s) = san {
            let mut s = Rc::try_unwrap(s)
                .ok()
                .expect("block contexts dropped; sanitizer uniquely owned")
                .into_inner();
            s.check_occupancy(&occupancy, kernel.low_occupancy_waiver());
            let srep = s.finalize(grid_dim, block_dim, self.inner.cur_stream.get());
            self.inner.san_reports.borrow_mut().push(srep);
        }
        let mut report =
            self.report_from_stats(kernel.name(), grid_dim, block_dim, stats, occupancy);
        report.static_pred = static_pred;
        // fault rolls in a fixed order (stall, then corruption) so a plan
        // fires identically run to run
        if let Some(delay) = self.inner.inject_stall(kernel.name(), block_dim) {
            report.time += delay;
        }
        self.inner.inject_corruption(kernel.name(), block_dim);
        self.inner.log.borrow_mut().push(report.clone());
        Ok(report)
    }

    /// Installs a fault plan: subsequent launches and fallible
    /// allocations roll against it (see [`crate::fault`]). Replaces any
    /// previous plan and restarts its RNG stream; collected events are
    /// kept. An all-zero plan never fires and draws no random words, so
    /// installing [`FaultPlan::none`] is behaviorally identical to no
    /// plan at all.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.inner.fault.borrow_mut() = Some(FaultState::new(plan));
    }

    /// Removes the fault plan; subsequent launches run fault-free.
    /// Collected events are kept.
    pub fn clear_fault_plan(&self) {
        *self.inner.fault.borrow_mut() = None;
    }

    /// True when a fault plan that can actually fire is installed.
    pub fn fault_plan_active(&self) -> bool {
        self.inner
            .fault
            .borrow()
            .as_ref()
            .is_some_and(|st| !st.plan.is_zero())
    }

    /// True when this device is permanently down — killed directly via
    /// [`Device::mark_down`] or lost to its fault plan's down trigger,
    /// which is evaluated here against the accumulated modeled launch
    /// time (no RNG words are drawn). The first call that observes a
    /// plan trigger records one [`FaultKind::DeviceDown`] event; the
    /// state never clears — device loss is final.
    pub fn is_down(&self) -> bool {
        if self.inner.down.get() {
            return true;
        }
        let due = self
            .inner
            .fault
            .borrow()
            .as_ref()
            .is_some_and(|st| st.down_due(self.total_time()));
        if due {
            self.transition_down("fault-plan down trigger fired");
        }
        due
    }

    /// Permanently kills this device: every subsequent launch fails with
    /// [`LaunchError::DeviceDown`] and interconnect transfers touching it
    /// are rejected at the link layer. The host-driven, deterministic
    /// counterpart of a fault plan's down trigger; irreversible.
    pub fn mark_down(&self) {
        self.transition_down("marked down by the host");
    }

    /// Latches the down state and records the one-time transition event.
    fn transition_down(&self, why: &str) {
        if self.inner.down.get() {
            return;
        }
        self.inner.down.set(true);
        self.inner.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::DeviceDown,
            kernel: "device".to_string(),
            launch_index: self.inner.log_len(),
            stream: self.inner.cur_stream.get(),
            step: 0,
            lane: 0,
            target: None,
            detail: why.to_string(),
        });
    }

    /// Snapshot of every injected fault so far, in firing order.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.inner.fault_events.borrow().clone()
    }

    /// Drains the collected fault events.
    pub fn take_fault_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.inner.fault_events.borrow_mut())
    }

    /// Number of fault events collected so far (use to window a drain:
    /// events at positions `>= start` belong to work issued after the
    /// snapshot).
    pub fn fault_events_len(&self) -> usize {
        self.inner.fault_events.borrow().len()
    }

    /// Rolls this device's fault plan against an interconnect transfer
    /// (see [`crate::topology`]): an endpoint whose plan fires its
    /// launch-failure rate drops the transfer. Records a
    /// [`FaultKind::LaunchFailure`] event labeled with the transfer.
    pub(crate) fn inject_transfer_failure(&self, label: &str) -> bool {
        let fired = {
            let mut fault = self.inner.fault.borrow_mut();
            let Some(st) = fault.as_mut() else {
                return false;
            };
            let rate = st.plan.launch_failure_rate;
            st.roll(rate)
        };
        let Some(w) = fired else {
            return false;
        };
        let (step, lane) = attribute(w, 1);
        self.inner.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::LaunchFailure,
            kernel: label.to_string(),
            launch_index: self.log_len(),
            stream: self.inner.cur_stream.get(),
            step,
            lane,
            target: None,
            detail: "interconnect transfer dropped".to_string(),
        });
        true
    }

    /// Rolls this device's fault plan for a transfer stall: the link op
    /// completes but its modeled time is inflated by the plan's stall
    /// delay (a retried DMA / congested switch).
    pub(crate) fn inject_transfer_stall(&self, label: &str) -> Option<SimTime> {
        let (w, delay) = {
            let mut fault = self.inner.fault.borrow_mut();
            let st = fault.as_mut()?;
            let rate = st.plan.stall_rate;
            let w = st.roll(rate)?;
            (w, st.plan.stall_delay)
        };
        let (step, lane) = attribute(w, 1);
        self.inner.fault_events.borrow_mut().push(FaultEvent {
            kind: FaultKind::StreamStall,
            kernel: label.to_string(),
            launch_index: self.log_len(),
            stream: self.inner.cur_stream.get(),
            step,
            lane,
            target: None,
            detail: format!("transfer stalled {delay}"),
        });
        Some(delay)
    }

    /// Enables the sanitizer (default [`SanitizeConfig`]) for every
    /// subsequent launch on this device — including launches issued
    /// inside [`Device::stream_scope`], so batched/streamed serving
    /// traffic is covered. Each launch appends a [`SanitizerReport`]
    /// (see [`Device::sanitizer_reports`]).
    pub fn enable_sanitizer(&self) {
        self.enable_sanitizer_with(SanitizeConfig::default());
    }

    /// Enables the sanitizer with an explicit config.
    pub fn enable_sanitizer_with(&self, cfg: SanitizeConfig) {
        *self.inner.sanitize.borrow_mut() = Some(cfg);
    }

    /// Disables the sanitizer for subsequent launches. Collected reports
    /// are kept.
    pub fn disable_sanitizer(&self) {
        *self.inner.sanitize.borrow_mut() = None;
    }

    /// True when launches currently run under the sanitizer.
    pub fn sanitizer_enabled(&self) -> bool {
        self.inner.sanitize.borrow().is_some()
    }

    /// Runs one launch under the sanitizer (default config unless the
    /// device sanitizer is already enabled) and returns its report
    /// alongside the launch report — the per-launch enablement path.
    pub fn launch_sanitized<K: Kernel>(
        &self,
        kernel: &K,
    ) -> Result<(LaunchReport, SanitizerReport), LaunchError> {
        let was_enabled = self.sanitizer_enabled();
        if !was_enabled {
            self.enable_sanitizer();
        }
        let result = self.launch(kernel);
        if !was_enabled {
            self.disable_sanitizer();
        }
        let report = result?;
        let srep = self
            .inner
            .san_reports
            .borrow()
            .last()
            .cloned()
            .expect("sanitized launch must produce a report");
        Ok((report, srep))
    }

    /// Enables static lint capture (default [`LintConfig`]) for every
    /// subsequent launch: each launch plan is analyzed by
    /// [`lint::lint_kernel`] *before* its blocks run, appending a
    /// [`LintReport`] and stamping the [`LaunchReport`] with the
    /// kernel's static counter prediction. Analysis only — the launch
    /// outcome is unchanged.
    pub fn enable_lint(&self) {
        self.enable_lint_with(LintConfig::default());
    }

    /// Enables static lint capture with an explicit config.
    pub fn enable_lint_with(&self, cfg: LintConfig) {
        *self.inner.lint.borrow_mut() = Some(cfg);
    }

    /// Disables static lint capture for subsequent launches. Collected
    /// reports are kept.
    pub fn disable_lint(&self) {
        *self.inner.lint.borrow_mut() = None;
    }

    /// True when launch plans are currently captured by the static lint.
    pub fn lint_enabled(&self) -> bool {
        self.inner.lint.borrow().is_some()
    }

    /// Snapshot of all lint reports collected so far.
    pub fn lint_reports(&self) -> Vec<LintReport> {
        self.inner.lint_reports.borrow().clone()
    }

    /// Drains the collected lint reports.
    pub fn take_lint_reports(&self) -> Vec<LintReport> {
        std::mem::take(&mut *self.inner.lint_reports.borrow_mut())
    }

    /// Snapshot of all sanitizer reports collected so far.
    pub fn sanitizer_reports(&self) -> Vec<SanitizerReport> {
        self.inner.san_reports.borrow().clone()
    }

    /// Drains the collected sanitizer reports.
    pub fn take_sanitizer_reports(&self) -> Vec<SanitizerReport> {
        std::mem::take(&mut *self.inner.san_reports.borrow_mut())
    }

    fn report_from_stats(
        &self,
        name: &'static str,
        grid_dim: usize,
        block_dim: usize,
        stats: KernelStats,
        occupancy: Occupancy,
    ) -> LaunchReport {
        let spec = &self.inner.spec;
        let bw_eff = occupancy.bandwidth_efficiency(spec).max(1e-3);
        let t_global = stats.global_bytes() as f64 / (spec.global_bw * bw_eff);
        let t_shared = stats.shared_eff_bytes as f64 / spec.shared_bw;
        let t_compute = (stats.compute_ops as f64 + stats.atomic_ops as f64 * spec.atomic_op_cost)
            / spec.compute_ops_per_sec;
        let t = t_global.max(t_shared).max(t_compute) + spec.launch_overhead;
        LaunchReport {
            name,
            stream: self.inner.cur_stream.get(),
            grid_dim,
            block_dim,
            stats,
            occupancy,
            t_global: SimTime(t_global),
            t_shared: SimTime(t_shared),
            t_compute: SimTime(t_compute),
            time: SimTime(t),
            static_pred: None,
        }
    }

    /// Charges one host→device ingest transfer of `bytes` against this
    /// device and records it in the ingest ledger. The modeled time uses
    /// the same PCIe 3.0 x16 link model the cluster topology prices
    /// host-staged hops with, so a single-device append costs exactly
    /// what the equivalent `Cluster::host_to_device` leg would.
    ///
    /// Streaming appends are the caller: uploading a delta of rows is
    /// real wire traffic even though buffer writes themselves are
    /// functional (untimed) in the simulator.
    pub fn ingest_transfer(&self, bytes: usize, label: impl Into<String>) -> SimTime {
        let time = SimTime(crate::topology::LinkSpec::pcie3_x16().seconds(bytes));
        self.inner.ingests.borrow_mut().push(IngestRecord {
            label: label.into(),
            bytes,
            time,
        });
        time
    }

    /// Snapshot of the ingest ledger, in charge order.
    pub fn ingest_log(&self) -> Vec<IngestRecord> {
        self.inner.ingests.borrow().clone()
    }

    /// Number of ingest transfers charged so far.
    pub fn ingest_len(&self) -> usize {
        self.inner.ingests.borrow().len()
    }

    /// Total modeled time of every charged ingest transfer.
    pub fn total_ingest_time(&self) -> SimTime {
        self.inner.ingests.borrow().iter().map(|r| r.time).sum()
    }

    /// Total modeled time of all launches since the last reset.
    pub fn total_time(&self) -> SimTime {
        self.inner.log.borrow().iter().map(|r| r.time).sum()
    }

    /// Snapshot of the launch log.
    pub fn launch_log(&self) -> Vec<LaunchReport> {
        self.inner.log.borrow().clone()
    }

    /// Number of launches recorded so far (use with [`Device::log_since`]).
    pub fn log_len(&self) -> usize {
        self.inner.log.borrow().len()
    }

    /// The launches recorded after position `start` — how algorithms
    /// attribute launches (and simulated time) to one invocation.
    pub fn log_since(&self, start: usize) -> Vec<LaunchReport> {
        self.inner.log.borrow()[start..].to_vec()
    }

    /// Aggregated counters, modeled time and time-weighted occupancy for
    /// the launches recorded after position `start` (see
    /// [`LaunchWindow`]).
    pub fn window_since(&self, start: usize) -> LaunchWindow {
        LaunchWindow::from_reports(&self.inner.log.borrow()[start..])
    }

    /// Clears the launch log (typically between measured runs). Also
    /// drops recorded cross-stream wait edges, which reference log
    /// positions.
    pub fn reset_log(&self) {
        self.inner.log.borrow_mut().clear();
        self.inner.waits.borrow_mut().clear();
    }

    /// Creates a new stream with a device-unique id. Launches issued
    /// inside [`Device::stream_scope`] for this stream share the device
    /// with launches on other streams when scheduled.
    pub fn create_stream(&self) -> Stream {
        let id = self.inner.next_stream.get();
        self.inner.next_stream.set(id + 1);
        Stream::new(Rc::clone(&self.inner), StreamId(id))
    }

    /// Runs `f` with the current stream set to `id`; every launch inside
    /// is stamped with that stream. Scopes nest and restore on exit.
    pub fn stream_scope<R>(&self, id: StreamId, f: impl FnOnce() -> R) -> R {
        let prev = self.inner.cur_stream.replace(id.0);
        let out = f();
        self.inner.cur_stream.set(prev);
        out
    }

    /// The stream new launches are currently stamped with.
    pub fn current_stream(&self) -> StreamId {
        StreamId(self.inner.cur_stream.get())
    }

    /// The launches recorded on one stream.
    pub fn stream_log(&self, id: StreamId) -> Vec<LaunchReport> {
        self.inner
            .log
            .borrow()
            .iter()
            .filter(|r| r.stream == id.0)
            .cloned()
            .collect()
    }

    /// Schedules the whole launch log onto the shared device timeline
    /// (see [`stream::schedule`] for the contention model).
    pub fn schedule(&self) -> StreamSchedule {
        self.schedule_since(0)
    }

    /// Schedules the launches recorded after position `start`. Wait
    /// edges whose source launches fall before `start` are treated as
    /// already satisfied.
    pub fn schedule_since(&self, start: usize) -> StreamSchedule {
        let log = self.inner.log.borrow();
        let waits = self.inner.waits.borrow();
        stream::schedule(&self.inner.spec, &log[start..], &waits, start)
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SharedHandle;

    /// Doubles every element, grid-strided.
    struct DoubleKernel {
        data: GpuBuffer<f32>,
        grid: usize,
        block: usize,
    }

    impl Kernel for DoubleKernel {
        fn name(&self) -> &'static str {
            "double"
        }
        fn block_dim(&self) -> usize {
            self.block
        }
        fn grid_dim(&self) -> usize {
            self.grid
        }
        fn run_block(&self, blk: &mut BlockCtx) {
            let n = self.data.len();
            let total = self.grid * self.block;
            let mut iters = 0usize;
            let mut base = blk.block_idx * self.block;
            while base < n {
                iters += 1;
                base += total;
            }
            for it in 0..iters {
                blk.step(|l| {
                    let i = l.gtid() + it * total;
                    if i < n {
                        let v = l.gread(&self.data, i);
                        l.gwrite(&self.data, i, v * 2.0);
                        l.ops(1);
                    }
                });
            }
        }
    }

    #[test]
    fn launch_executes_and_times() {
        let dev = Device::titan_x();
        let data = dev.upload(&(0..1024).map(|i| i as f32).collect::<Vec<_>>());
        let k = DoubleKernel {
            data: data.clone(),
            grid: 4,
            block: 128,
        };
        let r = dev.launch(&k).unwrap();
        assert_eq!(data.get(10), 20.0);
        // 1024 × 4 B read + written once
        assert_eq!(r.stats.global_read_bytes, 4096);
        assert_eq!(r.stats.global_write_bytes, 4096);
        assert!(r.time.0 > 0.0);
        assert!(r.time.0 >= dev.spec().launch_overhead);
        assert_eq!(dev.launch_log().len(), 1);
        assert!(dev.total_time().0 >= r.time.0 * 0.99);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let dev = Device::titan_x();
        let data = dev.upload(&[1.0f32; 32]);
        let k = DoubleKernel {
            data,
            grid: 1,
            block: 32,
        };
        let r = dev.launch(&k).unwrap();
        let oh = dev.spec().launch_overhead;
        assert!((r.time.0 - oh) / oh < 0.1, "tiny kernel ≈ pure overhead");
    }

    #[test]
    fn shared_limit_rejected() {
        struct BigShared;
        impl Kernel for BigShared {
            fn name(&self) -> &'static str {
                "big"
            }
            fn block_dim(&self) -> usize {
                32
            }
            fn grid_dim(&self) -> usize {
                1
            }
            fn shared_bytes_per_block(&self) -> usize {
                64 * 1024
            }
            fn run_block(&self, _b: &mut BlockCtx) {}
        }
        let dev = Device::titan_x();
        match dev.launch(&BigShared) {
            Err(LaunchError::SharedMemoryExceeded { requested, limit }) => {
                assert_eq!(requested, 64 * 1024);
                assert_eq!(limit, 48 * 1024);
            }
            other => panic!("expected SharedMemoryExceeded, got {other:?}"),
        }
    }

    #[test]
    fn block_too_large_rejected() {
        struct Wide;
        impl Kernel for Wide {
            fn name(&self) -> &'static str {
                "wide"
            }
            fn block_dim(&self) -> usize {
                2048
            }
            fn grid_dim(&self) -> usize {
                1
            }
            fn run_block(&self, _b: &mut BlockCtx) {}
        }
        assert!(matches!(
            Device::titan_x().launch(&Wide),
            Err(LaunchError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn memory_accounting_tracks_highwater() {
        let dev = Device::titan_x();
        assert_eq!(dev.memory_allocated(), 0);
        {
            let _a = dev.alloc::<f32>(1024); // 4 KiB
            let _b = dev.alloc::<f64>(1024); // 8 KiB
            assert_eq!(dev.memory_allocated(), 12 * 1024);
        }
        assert_eq!(dev.memory_allocated(), 0);
        assert_eq!(dev.memory_highwater(), 12 * 1024);
        dev.reset_memory_highwater();
        assert_eq!(dev.memory_highwater(), 0);
    }

    #[test]
    fn buffers_have_disjoint_address_ranges() {
        let dev = Device::titan_x();
        let a = dev.alloc::<f32>(10_000);
        let b = dev.alloc::<f32>(10_000);
        let a_end = a.base_addr() + (a.len() * 4) as u64;
        assert!(b.base_addr() >= a_end);
    }

    #[test]
    fn low_occupancy_degrades_bandwidth_timing() {
        // same traffic, but one kernel declares a huge shared footprint
        struct Streamer {
            data: GpuBuffer<f32>,
            shared: usize,
        }
        impl Kernel for Streamer {
            fn name(&self) -> &'static str {
                "streamer"
            }
            fn block_dim(&self) -> usize {
                64
            }
            fn grid_dim(&self) -> usize {
                4
            }
            fn shared_bytes_per_block(&self) -> usize {
                self.shared
            }
            fn run_block(&self, blk: &mut BlockCtx) {
                blk.bulk_global_read((self.data.len() * 4) as u64 / self.grid_dim() as u64);
            }
        }
        let dev = Device::titan_x();
        let data = dev.alloc::<f32>(1 << 20);
        let fast = dev
            .launch(&Streamer {
                data: data.clone(),
                shared: 0,
            })
            .unwrap();
        let slow = dev
            .launch(&Streamer {
                data,
                shared: 40 * 1024,
            })
            .unwrap();
        assert!(
            slow.time.0 > fast.time.0 * 1.5,
            "occupancy penalty missing: slow={} fast={}",
            slow.time,
            fast.time
        );
    }

    #[test]
    fn bound_by_classification() {
        let dev = Device::titan_x();
        struct Computey;
        impl Kernel for Computey {
            fn name(&self) -> &'static str {
                "computey"
            }
            fn block_dim(&self) -> usize {
                32
            }
            fn grid_dim(&self) -> usize {
                1
            }
            fn run_block(&self, blk: &mut BlockCtx) {
                blk.bulk_ops(1_000_000_000);
            }
        }
        let r = dev.launch(&Computey).unwrap();
        assert_eq!(r.bound_by(), "compute");
    }

    #[test]
    fn launch_window_aggregates_counters_without_sanitizer() {
        let dev = Device::titan_x();
        let data = dev.upload(&(0..4096).map(|i| i as f32).collect::<Vec<_>>());
        let start = dev.log_len();
        for _ in 0..3 {
            dev.launch(&DoubleKernel {
                data: data.clone(),
                grid: 4,
                block: 128,
            })
            .unwrap();
        }
        assert!(!dev.sanitizer_enabled());
        let w = dev.window_since(start);
        assert_eq!(w.launches, 3);
        assert_eq!(w.stats.global_read_bytes, 3 * 4096 * 4);
        assert!((w.time.seconds() - dev.window_since(0).time.seconds()).abs() < 1e-15);
        assert!(w.time_weighted_occupancy > 0.0 && w.time_weighted_occupancy <= 1.0);
        // aggregating the same reports directly gives the same window
        let w2 = LaunchWindow::from_reports(&dev.log_since(start));
        assert_eq!(w2.launches, w.launches);
        assert_eq!(w2.stats, w.stats);
        // empty window: no launches, no time, occupancy 0
        let e = dev.window_since(dev.log_len());
        assert_eq!(e.launches, 0);
        assert_eq!(e.time_weighted_occupancy, 0.0);
    }

    #[test]
    fn shared_handle_len() {
        let mut ctx = BlockCtx::new(DeviceSpec::titan_x_maxwell(), 0, 1, 32);
        let h: SharedHandle<u32> = ctx.alloc_shared(48);
        assert_eq!(h.len(), 48);
        assert!(!h.is_empty());
    }
}
