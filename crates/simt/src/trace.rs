//! Launch-timeline export in Chrome tracing format.
//!
//! [`chrome_trace`] serializes a launch log as a `chrome://tracing` /
//! Perfetto-compatible JSON array: one complete event per kernel, laid
//! end-to-end on the device track, with the traffic counters attached as
//! event arguments. Drop the output into a `.json` file and load it in
//! the browser to see where an algorithm's simulated time goes.

use crate::device::LaunchReport;

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a launch log as Chrome tracing JSON (a complete-event array).
///
/// Events are placed sequentially, as the launches would execute on one
/// stream; timestamps are microseconds of simulated time.
pub fn chrome_trace(reports: &[LaunchReport]) -> String {
    let mut out = String::from("[");
    let mut t_us = 0.0f64;
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = r.time.micros();
        out.push_str(&format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",",
                "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{",
                "\"grid\":{},\"block\":{},\"bound_by\":\"{}\",",
                "\"global_MB\":{:.3},\"shared_eff_MB\":{:.3},",
                "\"conflict_cycles\":{},\"occupancy\":{:.3}}}}}"
            ),
            esc(r.name),
            t_us,
            dur,
            r.grid_dim,
            r.block_dim,
            r.bound_by(),
            r.stats.global_bytes() as f64 / 1e6,
            r.stats.shared_eff_bytes as f64 / 1e6,
            r.stats.shared_conflict_cycles,
            r.occupancy.occupancy,
        ));
        t_us += dur;
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCtx, Device, Kernel};

    struct Tiny;
    impl Kernel for Tiny {
        fn name(&self) -> &'static str {
            "tiny\"kernel"
        }
        fn block_dim(&self) -> usize {
            32
        }
        fn grid_dim(&self) -> usize {
            1
        }
        fn run_block(&self, blk: &mut BlockCtx) {
            blk.bulk_global_read(1024);
        }
    }

    #[test]
    fn trace_is_well_formed() {
        let dev = Device::titan_x();
        dev.launch(&Tiny).unwrap();
        dev.launch(&Tiny).unwrap();
        let json = chrome_trace(&dev.launch_log());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // quotes in kernel names must be escaped
        assert!(json.contains("tiny\\\"kernel"));
        // events must be laid end-to-end (second ts == first dur)
        let first_dur = json.split("\"dur\":").nth(1).unwrap();
        let dur: f64 = first_dur.split(',').next().unwrap().parse().unwrap();
        let second_ts = json.split("\"ts\":").nth(2).unwrap();
        let ts: f64 = second_ts.split(',').next().unwrap().parse().unwrap();
        assert!((dur - ts).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_empty_array() {
        assert_eq!(chrome_trace(&[]), "[]");
    }
}
