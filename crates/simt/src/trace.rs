//! Launch-timeline export in Chrome tracing format.
//!
//! [`chrome_trace`] serializes a launch log as a `chrome://tracing` /
//! Perfetto-compatible JSON array: one complete event per kernel, laid
//! end-to-end on the device track, with the traffic counters attached as
//! event arguments. Drop the output into a `.json` file and load it in
//! the browser to see where an algorithm's simulated time goes.

use crate::device::LaunchReport;
use crate::stream::StreamSchedule;

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a launch log as Chrome tracing JSON (a complete-event array).
///
/// Events are placed sequentially, as the launches would execute on one
/// stream; timestamps are microseconds of simulated time.
pub fn chrome_trace(reports: &[LaunchReport]) -> String {
    let mut out = String::from("[");
    let mut t_us = 0.0f64;
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = r.time.micros();
        out.push_str(&format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",",
                "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{",
                "\"grid\":{},\"block\":{},\"bound_by\":\"{}\",",
                "\"global_MB\":{:.3},\"shared_eff_MB\":{:.3},",
                "\"conflict_cycles\":{},\"occupancy\":{:.3}}}}}"
            ),
            esc(r.name),
            t_us,
            dur,
            r.grid_dim,
            r.block_dim,
            r.bound_by(),
            r.stats.global_bytes() as f64 / 1e6,
            r.stats.shared_eff_bytes as f64 / 1e6,
            r.stats.shared_conflict_cycles,
            r.occupancy.occupancy,
        ));
        t_us += dur;
    }
    out.push(']');
    out
}

/// Renders a [`StreamSchedule`] as Chrome tracing JSON: one track (tid)
/// per stream, events placed at their *scheduled* start times, so
/// cross-stream overlap and contention stretch are visible.
///
/// `log` must be the full device launch log the schedule was computed
/// from ([`ScheduledLaunch::index`](crate::stream::ScheduledLaunch) is an
/// absolute log position).
pub fn chrome_trace_streams(schedule: &StreamSchedule, log: &[LaunchReport]) -> String {
    let mut out = String::from("[");
    let mut streams: Vec<usize> = schedule.launches.iter().map(|l| l.stream).collect();
    streams.sort_unstable();
    streams.dedup();
    let mut first = true;
    for s in &streams {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            concat!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},",
                "\"args\":{{\"name\":\"stream {}\"}}}}"
            ),
            s, s
        ));
    }
    for l in &schedule.launches {
        let r = &log[l.index];
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",",
                "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
                "\"grid\":{},\"block\":{},\"bound_by\":\"{}\",",
                "\"global_MB\":{:.3},\"stretch\":{:.3},\"occupancy\":{:.3}}}}}"
            ),
            esc(r.name),
            l.start.micros(),
            (l.end.0 - l.start.0) * 1e6,
            l.stream,
            r.grid_dim,
            r.block_dim,
            r.bound_by(),
            r.stats.global_bytes() as f64 / 1e6,
            l.stretch,
            r.occupancy.occupancy,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCtx, Device, Kernel};

    struct Tiny;
    impl Kernel for Tiny {
        fn name(&self) -> &'static str {
            "tiny\"kernel"
        }
        fn block_dim(&self) -> usize {
            32
        }
        fn grid_dim(&self) -> usize {
            1
        }
        fn run_block(&self, blk: &mut BlockCtx) {
            blk.bulk_global_read(1024);
        }
    }

    #[test]
    fn trace_is_well_formed() {
        let dev = Device::titan_x();
        dev.launch(&Tiny).unwrap();
        dev.launch(&Tiny).unwrap();
        let json = chrome_trace(&dev.launch_log());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // quotes in kernel names must be escaped
        assert!(json.contains("tiny\\\"kernel"));
        // events must be laid end-to-end (second ts == first dur)
        let first_dur = json.split("\"dur\":").nth(1).unwrap();
        let dur: f64 = first_dur.split(',').next().unwrap().parse().unwrap();
        let second_ts = json.split("\"ts\":").nth(2).unwrap();
        let ts: f64 = second_ts.split(',').next().unwrap().parse().unwrap();
        assert!((dur - ts).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_empty_array() {
        assert_eq!(chrome_trace(&[]), "[]");
    }

    #[test]
    fn stream_trace_has_one_track_per_stream() {
        let dev = Device::titan_x();
        let a = dev.create_stream();
        let b = dev.create_stream();
        for st in [&a, &b] {
            dev.stream_scope(st.id(), || dev.launch(&Tiny).unwrap());
        }
        let json = chrome_trace_streams(&dev.schedule(), &dev.launch_log());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
        assert!(json.contains(&format!("\"tid\":{}", a.id().0)));
        assert!(json.contains(&format!("\"tid\":{}", b.id().0)));
        // both tiny kernels overlap: both scheduled at ts 0
        assert_eq!(json.matches("\"ts\":0.000").count(), 2);
    }
}
