//! Kernel statistics and simulated time.

/// Simulated time in seconds.
///
/// A thin newtype so call sites can't confuse simulated GPU time with
/// host wall-clock measurements.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a duration in seconds.
    pub fn from_seconds(s: f64) -> Self {
        SimTime(s)
    }
    /// The duration in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }
    /// The duration in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }
    /// The duration in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> Self {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} µs", self.0 * 1e6)
        }
    }
}

/// Machine-quantity counters accumulated over one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Global memory bytes moved (after coalescing), reads.
    pub global_read_bytes: u64,
    /// Global memory bytes moved (after coalescing), writes.
    pub global_write_bytes: u64,
    /// Number of coalesced 32-byte sectors touched.
    pub global_sectors: u64,
    /// Raw global access count (lane-level, before coalescing).
    pub global_accesses: u64,
    /// Shared-memory effective bytes: conflict-degree-weighted warp lines.
    pub shared_eff_bytes: u64,
    /// Raw shared access count (lane-level).
    pub shared_accesses: u64,
    /// Warp-level shared access groups that had a bank conflict.
    pub shared_conflict_groups: u64,
    /// Extra cycles lost to bank conflicts (degree − 1 summed over groups).
    pub shared_conflict_cycles: u64,
    /// Scalar-op-equivalents of compute work.
    pub compute_ops: u64,
    /// Atomic operations issued.
    pub atomic_ops: u64,
    /// Number of `step` rounds executed across all blocks.
    pub steps: u64,
}

impl KernelStats {
    /// Total global bytes (reads + writes).
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.global_sectors += other.global_sectors;
        self.global_accesses += other.global_accesses;
        self.shared_eff_bytes += other.shared_eff_bytes;
        self.shared_accesses += other.shared_accesses;
        self.shared_conflict_groups += other.shared_conflict_groups;
        self.shared_conflict_cycles += other.shared_conflict_cycles;
        self.compute_ops += other.compute_ops;
        self.atomic_ops += other.atomic_ops;
        self.steps += other.steps;
    }

    /// Average 32-byte sectors touched per raw global access — the
    /// coalescing quality. 1/8 is perfect for 4-byte lanes (8 lanes per
    /// sector); 1.0 means every lane paid its own sector (fully
    /// uncoalesced). Returns 0 when no tracked global accesses occurred
    /// (bulk-traffic kernels charge bytes without per-lane accounting).
    pub fn sectors_per_access(&self) -> f64 {
        if self.global_accesses == 0 {
            0.0
        } else {
            self.global_sectors as f64 / self.global_accesses as f64
        }
    }

    /// Average bank-conflict degree over shared warp access groups:
    /// 1.0 means conflict-free.
    pub fn avg_conflict_degree(&self) -> f64 {
        let groups = self.shared_eff_bytes / 128; // one warp line = 128 B
        if groups == 0 {
            return 1.0;
        }
        // eff bytes = degree × 128 per group, so degree = eff / (groups’ base)
        let base_groups = groups - self.shared_conflict_cycles;
        if base_groups == 0 {
            1.0
        } else {
            groups as f64 / base_groups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_and_display() {
        let a = SimTime::from_seconds(0.5e-3);
        let b = SimTime::from_seconds(1.5e-3);
        assert!((a + b).millis() - 2.0 < 1e-12);
        let mut c = a;
        c += b;
        assert!((c.millis() - 2.0).abs() < 1e-12);
        assert_eq!(format!("{}", SimTime::from_seconds(2.0)), "2.000 s");
        assert_eq!(format!("{}", SimTime::from_seconds(2e-3)), "2.000 ms");
        assert_eq!(format!("{}", SimTime::from_seconds(2e-6)), "2.000 µs");
        let total: SimTime = [a, b].into_iter().sum();
        assert!((total.millis() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn avg_conflict_degree_from_counters() {
        // two warp lines, one conflict cycle → 2 lines / 1 group = 2.0
        let s = KernelStats {
            shared_eff_bytes: 2 * 128,
            shared_conflict_groups: 1,
            shared_conflict_cycles: 1,
            ..Default::default()
        };
        assert!((s.avg_conflict_degree() - 2.0).abs() < 1e-9);
        // conflict-free traffic → 1.0
        let s = KernelStats {
            shared_eff_bytes: 4 * 128,
            ..Default::default()
        };
        assert!((s.avg_conflict_degree() - 1.0).abs() < 1e-9);
        // no shared traffic at all → 1.0
        assert!((KernelStats::default().avg_conflict_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = KernelStats {
            global_read_bytes: 100,
            compute_ops: 5,
            ..Default::default()
        };
        let b = KernelStats {
            global_read_bytes: 50,
            global_write_bytes: 10,
            atomic_ops: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 150);
        assert_eq!(a.global_write_bytes, 10);
        assert_eq!(a.global_bytes(), 160);
        assert_eq!(a.compute_ops, 5);
        assert_eq!(a.atomic_ops, 3);
    }
}
