//! `simt::sanitize` — a compute-sanitizer–style analysis layer for
//! simulated kernels.
//!
//! Real CUDA ships `compute-sanitizer` with three main tools; this module
//! mirrors each of them against the simulator's per-step access streams:
//!
//! * **racecheck** — two lanes touching the same shared word within one
//!   [`crate::BlockCtx::step`] (one barrier interval) with at least one
//!   write, plus conflicting global writes to the same 4-byte word — from
//!   different lanes within a step, or from different blocks anywhere in
//!   the launch. The simulator replays lanes in a fixed order, so such
//!   code *works* here but would be nondeterministic on silicon.
//! * **memcheck** — out-of-bounds shared/global accesses reported as
//!   structured diagnostics (kernel, step, lane, address, allocation)
//!   instead of raw `Vec` panics. With a sanitizer attached the faulting
//!   access is skipped (reads return `T::default()`), matching
//!   compute-sanitizer's report-and-continue behavior.
//! * **initcheck** — reads of shared words never written since
//!   [`crate::BlockCtx::alloc_shared`]. The simulator default-fills
//!   shared arrays, which masks reads-before-write that would observe
//!   garbage on hardware.
//!
//! On top of those, **perf lints** flag uncoalesced global access
//! patterns (sectors-per-warp-access above a threshold), shared-memory
//! bank-conflict hotspots, and occupancy-limiting launch configurations.
//!
//! Enable per device with [`crate::Device::enable_sanitizer`] (every
//! launch, including launches issued inside stream scopes, produces a
//! [`SanitizerReport`]) or per launch with
//! [`crate::Device::launch_sanitized`].
//!
//! # The step-as-barrier-interval race model
//!
//! `step()` models the code between two `__syncthreads()` barriers, so
//! accesses inside one step are concurrent and accesses in different
//! steps are ordered. This makes racecheck exact for the simulator's
//! programming model but narrower than hardware racecheck: warp-level
//! intrinsics, `__syncwarp()` sub-block ordering, and atomics-based
//! synchronization have no equivalent here, and bulk-accounted traffic
//! (`bulk_*` methods) carries no addresses at all, so only tracked and
//! `*_untracked` lane accesses are analyzed.

use std::collections::HashMap;

use crate::occupancy::Occupancy;
use crate::spec::DeviceSpec;

/// Which analyses run and the thresholds the perf lints fire at.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    /// Detect shared-word and global-word races (see module docs).
    pub racecheck: bool,
    /// Report out-of-bounds accesses as findings and skip the faulting
    /// access. When disabled, OOB accesses panic (always-on bounds checks
    /// never silently pass).
    pub memcheck: bool,
    /// Detect reads of shared words never written since allocation.
    pub initcheck: bool,
    /// Emit coalescing / bank-conflict / occupancy warnings.
    pub perf_lints: bool,
    /// Uncoalesced-global lint: fires when a warp's accesses in one slot
    /// touch more than this many 32-byte sectors per access.
    pub max_sectors_per_access: f64,
    /// Uncoalesced-global lint: minimum accesses in the warp/slot group
    /// before the lint applies (tail groups are exempt).
    pub min_accesses_for_coalescing: u64,
    /// Bank-conflict lint: fires at this conflict degree or worse.
    pub min_bank_conflict_degree: u64,
    /// Occupancy lint: fires when achieved occupancy is below this
    /// fraction of the SM's maximum resident warps (unless the kernel
    /// declares a waiver, see [`crate::Kernel::low_occupancy_waiver`]).
    pub min_occupancy: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            racecheck: true,
            memcheck: true,
            initcheck: true,
            perf_lints: true,
            max_sectors_per_access: 0.5,
            min_accesses_for_coalescing: 8,
            min_bank_conflict_degree: 8,
            min_occupancy: 0.25,
        }
    }
}

/// The class of defect (or inefficiency) a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Two lanes touched the same shared word in one step, ≥ 1 write.
    SharedRace,
    /// Conflicting global accesses to the same 4-byte word: ≥ 1 write
    /// from ≥ 2 lanes in one step, or writes from different blocks
    /// within the launch.
    GlobalRace,
    /// Shared access past the end of its allocation.
    SharedOutOfBounds,
    /// Global access past the end of its buffer.
    GlobalOutOfBounds,
    /// Read of a shared word never written since `alloc_shared`.
    UninitializedRead,
    /// A warp's global accesses in one slot spread over too many sectors.
    UncoalescedGlobal,
    /// Shared-memory bank-conflict degree at or above the threshold.
    BankConflict,
    /// Launch configuration limits occupancy below the threshold.
    LowOccupancy,
}

/// Error vs. warning classification of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A correctness defect (racecheck / memcheck / initcheck).
    Error,
    /// A performance lint.
    Warning,
}

impl FindingKind {
    /// Correctness findings are errors; perf lints are warnings.
    pub fn severity(&self) -> Severity {
        match self {
            FindingKind::SharedRace
            | FindingKind::GlobalRace
            | FindingKind::SharedOutOfBounds
            | FindingKind::GlobalOutOfBounds
            | FindingKind::UninitializedRead => Severity::Error,
            FindingKind::UncoalescedGlobal
            | FindingKind::BankConflict
            | FindingKind::LowOccupancy => Severity::Warning,
        }
    }

    /// Stable dotted identifier (`tool.check`), used in rendered and JSON
    /// output.
    pub fn code(&self) -> &'static str {
        match self {
            FindingKind::SharedRace => "racecheck.shared-race",
            FindingKind::GlobalRace => "racecheck.global-race",
            FindingKind::SharedOutOfBounds => "memcheck.shared-oob",
            FindingKind::GlobalOutOfBounds => "memcheck.global-oob",
            FindingKind::UninitializedRead => "initcheck.uninit-read",
            FindingKind::UncoalescedGlobal => "perf.uncoalesced-global",
            FindingKind::BankConflict => "perf.bank-conflict",
            FindingKind::LowOccupancy => "perf.low-occupancy",
        }
    }
}

/// One deduplicated diagnostic. Attribution fields (`block`, `step`,
/// `lane`, `address`) describe the **first** occurrence; `occurrences`
/// counts every repeat that deduplicated onto it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What was detected.
    pub kind: FindingKind,
    /// Kernel the launch ran.
    pub kernel: &'static str,
    /// Block index of the first occurrence.
    pub block: usize,
    /// Step index (barrier interval) of the first occurrence.
    pub step: usize,
    /// Lane (thread index within the block) of the first occurrence.
    pub lane: usize,
    /// Shared word index or global byte address of the first occurrence
    /// (0 when not address-specific, e.g. occupancy lints).
    pub address: u64,
    /// Description of the allocation involved, when known.
    pub allocation: String,
    /// Human-readable explanation of the first occurrence.
    pub detail: String,
    /// Total occurrences folded into this finding.
    pub occurrences: u64,
}

impl Finding {
    /// Error/warning classification (delegates to the kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} `{}` block {} step {} lane {}: {}",
            self.kind.code(),
            match self.severity() {
                Severity::Error => "ERROR",
                Severity::Warning => "WARN",
            },
            self.kernel,
            self.block,
            self.step,
            self.lane,
            self.detail
        )?;
        if !self.allocation.is_empty() {
            write!(f, " [{}]", self.allocation)?;
        }
        if self.occurrences > 1 {
            write!(f, " (×{})", self.occurrences)?;
        }
        Ok(())
    }
}

/// A shared allocation's footprint, for attributing shared findings.
#[derive(Debug, Clone)]
struct SharedAlloc {
    base_word: u32,
    words: u32,
    len: usize,
    elem: &'static str,
}

impl SharedAlloc {
    fn describe(&self, id: usize) -> String {
        format!(
            "shared #{id} <{}>[{}] words {}..{}",
            self.elem,
            self.len,
            self.base_word,
            self.base_word + self.words
        )
    }
}

/// Per-word accumulator for one step's racecheck.
#[derive(Debug, Clone, Copy, Default)]
struct WordAcc {
    touched: bool,
    first_lane: u32,
    other_lane: Option<u32>,
    write_lane: Option<u32>,
}

impl WordAcc {
    fn touch(&mut self, lane: u32, write: bool) {
        if !self.touched {
            self.touched = true;
            self.first_lane = lane;
        } else if lane != self.first_lane && self.other_lane.is_none() {
            self.other_lane = Some(lane);
        }
        if write && self.write_lane.is_none() {
            self.write_lane = Some(lane);
        }
    }

    fn is_race(&self) -> bool {
        self.other_lane.is_some() && self.write_lane.is_some()
    }
}

/// One tracked access within the current step, kept for the perf lints'
/// warp/slot grouping (mirrors the replay grouping in `block.rs`).
#[derive(Debug, Clone, Copy)]
struct StepAccess {
    lane: u32,
    slot: u32,
    /// Shared word index, or global byte address.
    addr: u64,
    /// Words (shared) or bytes (global) the access covers.
    size: u32,
    shared: bool,
}

/// Per-launch sanitizer state, attached to every [`crate::BlockCtx`] of
/// the launch by `Device::launch` when sanitizing is enabled.
pub(crate) struct LaunchSanitizer {
    cfg: SanitizeConfig,
    kernel: &'static str,
    findings: Vec<Finding>,
    index: HashMap<(FindingKind, u64), usize>,
    waived: Vec<String>,
    // --- block-scoped state (reset by begin_block) ---
    cur_block: usize,
    shared_written: Vec<bool>,
    shared_allocs: Vec<SharedAlloc>,
    // --- step-scoped state (reset by end_step) ---
    cur_step: usize,
    step_shared: HashMap<u32, WordAcc>,
    step_global: HashMap<u64, WordAcc>,
    step_log: Vec<StepAccess>,
    // --- launch-wide state ---
    /// First writer of each global 4-byte word: (block, lane, step).
    global_writers: HashMap<u64, (usize, usize, usize)>,
}

impl LaunchSanitizer {
    pub(crate) fn new(cfg: SanitizeConfig, kernel: &'static str) -> Self {
        LaunchSanitizer {
            cfg,
            kernel,
            findings: Vec::new(),
            index: HashMap::new(),
            waived: Vec::new(),
            cur_block: 0,
            shared_written: Vec::new(),
            shared_allocs: Vec::new(),
            cur_step: 0,
            step_shared: HashMap::new(),
            step_global: HashMap::new(),
            step_log: Vec::new(),
            global_writers: HashMap::new(),
        }
    }

    pub(crate) fn memcheck_enabled(&self) -> bool {
        self.cfg.memcheck
    }

    /// Resets shared-memory state for a new block (shared memory does not
    /// survive across blocks, so initcheck bitmaps start over).
    pub(crate) fn begin_block(&mut self, block_idx: usize) {
        self.cur_block = block_idx;
        self.shared_written.clear();
        self.shared_allocs.clear();
    }

    /// Marks the start of a barrier interval.
    pub(crate) fn begin_step(&mut self, step: usize) {
        self.cur_step = step;
    }

    /// Registers a shared allocation (sizes the initcheck bitmap).
    pub(crate) fn on_alloc_shared(
        &mut self,
        base_word: u32,
        words: u32,
        len: usize,
        elem: &'static str,
    ) {
        let end = (base_word + words) as usize;
        if self.shared_written.len() < end {
            self.shared_written.resize(end, false);
        }
        self.shared_allocs.push(SharedAlloc {
            base_word,
            words,
            len,
            elem,
        });
    }

    fn shared_alloc_for(&self, word: u32) -> String {
        self.shared_allocs
            .iter()
            .position(|a| word >= a.base_word && word < a.base_word + a.words)
            .map(|i| self.shared_allocs[i].describe(i))
            .unwrap_or_default()
    }

    /// An in-bounds shared access by `lane` in the current step.
    /// `tracked` accesses also feed the perf lints; untracked ones are
    /// analyzed for races and initialization only.
    pub(crate) fn shared_access(
        &mut self,
        lane: usize,
        word: u32,
        words: u32,
        write: bool,
        slot: u32,
        tracked: bool,
    ) {
        if self.cfg.racecheck {
            for w in word..word + words {
                self.step_shared
                    .entry(w)
                    .or_default()
                    .touch(lane as u32, write);
            }
        }
        if self.cfg.initcheck {
            if write {
                for w in word..word + words {
                    self.shared_written[w as usize] = true;
                }
            } else {
                for w in word..word + words {
                    if !self.shared_written[w as usize] {
                        let alloc = self.shared_alloc_for(w);
                        self.emit(
                            FindingKind::UninitializedRead,
                            w as u64,
                            lane,
                            w as u64,
                            alloc,
                            format!("read of shared word {w} never written since alloc_shared"),
                        );
                    }
                }
            }
        }
        if tracked && self.cfg.perf_lints {
            self.step_log.push(StepAccess {
                lane: lane as u32,
                slot,
                addr: word as u64,
                size: words,
                shared: true,
            });
        }
    }

    /// An in-bounds tracked global access by `lane` in the current step.
    /// `describe` is invoked only if a finding must name the buffer.
    pub(crate) fn global_access(
        &mut self,
        lane: usize,
        addr: u64,
        bytes: u32,
        write: bool,
        slot: u32,
        describe: &dyn Fn() -> String,
    ) {
        if self.cfg.racecheck {
            let first = addr / 4;
            let last = (addr + bytes as u64 - 1) / 4;
            for w in first..=last {
                self.step_global
                    .entry(w)
                    .or_default()
                    .touch(lane as u32, write);
                if write {
                    match self.global_writers.get(&w) {
                        Some(&(b, l, s)) if b != self.cur_block => {
                            let detail = format!(
                                "global word 0x{:x} written by block {} (lane {l}, step {s}) \
                                 and block {} (lane {lane}, step {}); inter-block write order \
                                 is undefined within a launch",
                                w * 4,
                                b,
                                self.cur_block,
                                self.cur_step
                            );
                            self.emit(FindingKind::GlobalRace, w, lane, w * 4, describe(), detail);
                        }
                        Some(_) => {}
                        None => {
                            self.global_writers
                                .insert(w, (self.cur_block, lane, self.cur_step));
                        }
                    }
                }
            }
        }
        if self.cfg.perf_lints {
            self.step_log.push(StepAccess {
                lane: lane as u32,
                slot,
                addr,
                size: bytes,
                shared: false,
            });
        }
    }

    /// Records a shared out-of-bounds access (memcheck).
    pub(crate) fn record_shared_oob(
        &mut self,
        lane: usize,
        base_word: u32,
        len: usize,
        idx: usize,
        write: bool,
    ) {
        let alloc = self.shared_alloc_for(base_word);
        self.emit(
            FindingKind::SharedOutOfBounds,
            base_word as u64 ^ (idx as u64) << 32,
            lane,
            base_word as u64,
            alloc,
            format!(
                "shared {} out of bounds: index {idx} >= len {len}; access skipped",
                if write { "write" } else { "read" }
            ),
        );
    }

    /// Records a global out-of-bounds access (memcheck).
    pub(crate) fn record_global_oob(
        &mut self,
        lane: usize,
        base_addr: u64,
        len: usize,
        idx: usize,
        write: bool,
        alloc: String,
    ) {
        self.emit(
            FindingKind::GlobalOutOfBounds,
            base_addr ^ (idx as u64) << 32,
            lane,
            base_addr,
            alloc,
            format!(
                "global {} out of bounds: index {idx} >= len {len}; access skipped",
                if write { "write" } else { "read" }
            ),
        );
    }

    /// Ends the current barrier interval: emits intra-step races and the
    /// coalescing / bank-conflict lints, then clears step state.
    pub(crate) fn end_step(&mut self, spec: &DeviceSpec) {
        if self.cfg.racecheck {
            let shared: Vec<(u32, WordAcc)> = self
                .step_shared
                .iter()
                .filter(|(_, acc)| acc.is_race())
                .map(|(&w, &acc)| (w, acc))
                .collect();
            for (w, acc) in shared {
                let writer = acc.write_lane.unwrap_or(acc.first_lane);
                let other = if acc.other_lane == Some(writer) {
                    acc.first_lane
                } else {
                    acc.other_lane.unwrap_or(acc.first_lane)
                };
                let alloc = self.shared_alloc_for(w);
                self.emit(
                    FindingKind::SharedRace,
                    w as u64,
                    writer as usize,
                    w as u64,
                    alloc,
                    format!(
                        "lanes {writer} and {other} touched shared word {w} in the same step \
                         with ≥1 write; intra-step ordering is undefined"
                    ),
                );
            }
            let global: Vec<(u64, WordAcc)> = self
                .step_global
                .iter()
                .filter(|(_, acc)| acc.is_race())
                .map(|(&w, &acc)| (w, acc))
                .collect();
            for (w, acc) in global {
                let writer = acc.write_lane.unwrap_or(acc.first_lane);
                let other = if acc.other_lane == Some(writer) {
                    acc.first_lane
                } else {
                    acc.other_lane.unwrap_or(acc.first_lane)
                };
                self.emit(
                    FindingKind::GlobalRace,
                    w,
                    writer as usize,
                    w * 4,
                    String::new(),
                    format!(
                        "lanes {writer} and {other} touched global word 0x{:x} in the same \
                         step with ≥1 write",
                        w * 4
                    ),
                );
            }
        }

        if self.cfg.perf_lints && !self.step_log.is_empty() {
            self.perf_lint_step(spec);
        }

        self.step_shared.clear();
        self.step_global.clear();
        self.step_log.clear();
    }

    /// Warp/slot grouping of the step's tracked accesses, mirroring the
    /// replay model: global accesses coalesce into 32-byte sectors,
    /// shared accesses pay the per-bank degree over distinct words.
    fn perf_lint_step(&mut self, spec: &DeviceSpec) {
        let ws = spec.warp_size as u32;
        let banks = spec.shared_banks;
        let mut groups: HashMap<(u32, u32, bool), Vec<StepAccess>> = HashMap::new();
        for a in self.step_log.drain(..) {
            groups
                .entry((a.lane / ws, a.slot, a.shared))
                .or_default()
                .push(a);
        }
        let mut scratch: Vec<u64> = Vec::new();
        for ((warp, _slot, shared), accs) in groups {
            scratch.clear();
            let lane = accs[0].lane as usize;
            if shared {
                for a in &accs {
                    for dw in 0..a.size {
                        scratch.push(a.addr + dw as u64);
                    }
                }
                scratch.sort_unstable();
                scratch.dedup();
                let mut bank_counts = vec![0u64; banks];
                for &w in &scratch {
                    bank_counts[(w as usize) % banks] += 1;
                }
                let degree = bank_counts.iter().copied().max().unwrap_or(0);
                if degree >= self.cfg.min_bank_conflict_degree {
                    self.emit(
                        FindingKind::BankConflict,
                        0,
                        lane,
                        accs[0].addr,
                        String::new(),
                        format!(
                            "warp {warp} step {}: {degree}-way bank conflict over {} distinct \
                             shared words",
                            self.cur_step,
                            scratch.len()
                        ),
                    );
                }
            } else {
                for a in &accs {
                    let first = a.addr / 32;
                    let last = (a.addr + a.size as u64 - 1) / 32;
                    for s in first..=last {
                        scratch.push(s);
                    }
                }
                scratch.sort_unstable();
                scratch.dedup();
                let sectors = scratch.len() as u64;
                let n = accs.len() as u64;
                if n >= self.cfg.min_accesses_for_coalescing
                    && sectors as f64 / n as f64 > self.cfg.max_sectors_per_access
                {
                    self.emit(
                        FindingKind::UncoalescedGlobal,
                        0,
                        lane,
                        accs[0].addr,
                        String::new(),
                        format!(
                            "warp {warp} step {}: {sectors} sectors for {n} global accesses \
                             ({:.2} sectors/access)",
                            self.cur_step,
                            sectors as f64 / n as f64
                        ),
                    );
                }
            }
        }
    }

    /// Launch-level occupancy lint, applied once after all blocks ran.
    pub(crate) fn check_occupancy(&mut self, occ: &Occupancy, waiver: Option<&'static str>) {
        if !self.cfg.perf_lints || occ.occupancy >= self.cfg.min_occupancy {
            return;
        }
        let detail = format!(
            "occupancy {:.3} ({} warps/SM, limited by {:?}) below threshold {:.2}",
            occ.occupancy, occ.warps_per_sm, occ.limiter, self.cfg.min_occupancy
        );
        if let Some(reason) = waiver {
            self.waived
                .push(format!("perf.low-occupancy: {detail}; waived: {reason}"));
        } else {
            self.emit(FindingKind::LowOccupancy, 0, 0, 0, String::new(), detail);
        }
    }

    fn emit(
        &mut self,
        kind: FindingKind,
        key: u64,
        lane: usize,
        address: u64,
        allocation: String,
        detail: String,
    ) {
        if let Some(&i) = self.index.get(&(kind, key)) {
            self.findings[i].occurrences += 1;
            return;
        }
        self.index.insert((kind, key), self.findings.len());
        self.findings.push(Finding {
            kind,
            kernel: self.kernel,
            block: self.cur_block,
            step: self.cur_step,
            lane,
            address,
            allocation,
            detail,
            occurrences: 1,
        });
    }

    /// Consumes the per-launch state into the final report.
    pub(crate) fn finalize(
        mut self,
        grid_dim: usize,
        block_dim: usize,
        stream: usize,
    ) -> SanitizerReport {
        self.findings.sort_by_key(|f| {
            (
                match f.severity() {
                    Severity::Error => 0u8,
                    Severity::Warning => 1,
                },
                f.block,
                f.step,
            )
        });
        SanitizerReport {
            kernel: self.kernel,
            grid_dim,
            block_dim,
            stream,
            findings: self.findings,
            waived: self.waived,
        }
    }
}

/// Everything the sanitizer found in one kernel launch.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Kernel name.
    pub kernel: &'static str,
    /// Blocks in the launch.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Stream the launch was issued on.
    pub stream: usize,
    /// Deduplicated findings, errors first, then by (block, step).
    pub findings: Vec<Finding>,
    /// Lints suppressed by an explicit kernel waiver, with the reason.
    pub waived: Vec<String>,
}

impl SanitizerReport {
    /// True when nothing was found (waived lints do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of correctness findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
            .count()
    }

    /// Number of perf-lint findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// The findings of one kind.
    pub fn findings_of(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// Human-readable report, one finding per line — the
    /// compute-sanitizer-style console output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "========= simt-sanitize: `{}` (grid {} × block {}, stream {}) =========\n",
            self.kernel, self.grid_dim, self.block_dim, self.stream
        );
        if self.is_clean() {
            out.push_str("  clean: no findings\n");
        } else {
            out.push_str(&format!(
                "  {} error(s), {} warning(s)\n",
                self.error_count(),
                self.warning_count()
            ));
            for f in &self.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        for w in &self.waived {
            out.push_str(&format!("  waived: {w}\n"));
        }
        out
    }

    /// The report as a JSON object (hand-rolled; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    r#"{{"kind":"{}","severity":"{}","kernel":"{}","block":{},"step":{},"lane":{},"address":{},"allocation":"{}","detail":"{}","occurrences":{}}}"#,
                    f.kind.code(),
                    match f.severity() {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    },
                    json_escape(f.kernel),
                    f.block,
                    f.step,
                    f.lane,
                    f.address,
                    json_escape(&f.allocation),
                    json_escape(&f.detail),
                    f.occurrences
                )
            })
            .collect();
        let waived: Vec<String> = self
            .waived
            .iter()
            .map(|w| format!(r#""{}""#, json_escape(w)))
            .collect();
        format!(
            r#"{{"kernel":"{}","grid_dim":{},"block_dim":{},"stream":{},"errors":{},"warnings":{},"findings":[{}],"waived":[{}]}}"#,
            json_escape(self.kernel),
            self.grid_dim,
            self.block_dim,
            self.stream,
            self.error_count(),
            self.warning_count(),
            findings.join(","),
            waived.join(",")
        )
    }
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serializes a batch of launch reports as one JSON array — the artifact
/// format the CI sanitizer sweep uploads.
pub fn reports_to_json(reports: &[SanitizerReport]) -> String {
    let items: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!("[{}]", items.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> LaunchSanitizer {
        LaunchSanitizer::new(SanitizeConfig::default(), "unit")
    }

    #[test]
    fn sanitizer_dedups_and_counts_occurrences() {
        let mut s = san();
        s.begin_block(0);
        s.on_alloc_shared(0, 64, 64, "f32");
        for step in 0..3 {
            s.begin_step(step);
            // two lanes write the same word every step
            s.shared_access(1, 7, 1, true, 0, true);
            s.shared_access(2, 7, 1, true, 0, true);
            s.end_step(&DeviceSpec::titan_x_maxwell());
        }
        let rep = s.finalize(1, 32, 0);
        let races = rep.findings_of(FindingKind::SharedRace);
        assert_eq!(races.len(), 1, "same word dedups to one finding");
        assert_eq!(races[0].occurrences, 3);
        assert_eq!(races[0].step, 0, "attribution keeps the first occurrence");
        assert_eq!(rep.error_count(), 1);
    }

    #[test]
    fn sanitizer_single_lane_rmw_is_not_a_race() {
        let mut s = san();
        s.begin_block(0);
        s.on_alloc_shared(0, 64, 64, "f32");
        s.begin_step(0);
        s.shared_access(5, 9, 1, true, 0, true);
        s.shared_access(5, 9, 1, false, 1, true);
        s.end_step(&DeviceSpec::titan_x_maxwell());
        assert!(s.finalize(1, 32, 0).is_clean());
    }

    #[test]
    fn sanitizer_broadcast_read_is_not_a_race() {
        let mut s = san();
        s.begin_block(0);
        s.on_alloc_shared(0, 64, 64, "f32");
        // word 3 written in step 0 by one lane, read by all in step 1
        s.begin_step(0);
        s.shared_access(0, 3, 1, true, 0, true);
        s.end_step(&DeviceSpec::titan_x_maxwell());
        s.begin_step(1);
        for lane in 0..32 {
            s.shared_access(lane, 3, 1, false, 0, true);
        }
        s.end_step(&DeviceSpec::titan_x_maxwell());
        assert!(s.finalize(1, 32, 0).is_clean());
    }

    #[test]
    fn sanitizer_cross_block_write_conflict() {
        let mut s = san();
        s.begin_block(0);
        s.begin_step(0);
        s.global_access(3, 0x1000, 4, true, 0, &|| "buf".into());
        s.end_step(&DeviceSpec::titan_x_maxwell());
        s.begin_block(1);
        s.begin_step(0);
        s.global_access(4, 0x1000, 4, true, 0, &|| "buf".into());
        s.end_step(&DeviceSpec::titan_x_maxwell());
        let rep = s.finalize(2, 32, 0);
        let races = rep.findings_of(FindingKind::GlobalRace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].block, 1, "flagged at the second writer");
        assert_eq!(races[0].lane, 4);
    }

    #[test]
    fn sanitizer_json_escapes_and_renders() {
        let mut s = san();
        s.begin_block(0);
        s.begin_step(2);
        s.record_global_oob(9, 0x40, 16, 99, true, "GpuBuffer<\"x\">".into());
        let rep = s.finalize(1, 32, 7);
        let j = rep.to_json();
        assert!(j.contains(r#""kind":"memcheck.global-oob""#), "{j}");
        assert!(j.contains(r#"GpuBuffer<\"x\">"#), "{j}");
        assert!(j.contains(r#""stream":7"#), "{j}");
        assert!(rep.render().contains("1 error(s)"));
        let arr = reports_to_json(&[rep.clone(), rep]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
    }

    #[test]
    fn sanitizer_occupancy_waiver_suppresses_lint() {
        let spec = DeviceSpec::titan_x_maxwell();
        let occ = Occupancy::compute(&spec, 128, 32 * 1024, 32);
        assert!(occ.occupancy < 0.25);
        let mut s = san();
        s.check_occupancy(&occ, None);
        let rep = s.finalize(1, 128, 0);
        assert_eq!(rep.findings_of(FindingKind::LowOccupancy).len(), 1);

        let mut s = san();
        s.check_occupancy(&occ, Some("inherent to the algorithm"));
        let rep = s.finalize(1, 128, 0);
        assert!(rep.is_clean());
        assert_eq!(rep.waived.len(), 1);
    }
}
