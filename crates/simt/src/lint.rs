//! `simt::lint` — static launch-plan analysis.
//!
//! Where [`crate::sanitize`] *observes* a kernel's behavior by executing
//! it under instrumentation, this module *predicts* it before a single
//! simulated step runs. Each kernel declares an [`AccessSpec`] contract —
//! per-phase global access strides, the shared-memory words each lane
//! touches per barrier interval, barrier placement relative to divergent
//! branches, and index expressions in grid-geometry terms — and the
//! analyzer:
//!
//! * checks **launch validity** against the [`DeviceSpec`] (block size,
//!   shared memory per block, register file),
//! * computes a **static occupancy bound** (and flags configurations
//!   below the threshold unless the kernel carries a waiver),
//! * predicts **sectors-per-access** and **bank-conflict degree** from
//!   the declared strides, with the exact integer arithmetic the
//!   simulator's replay uses — so predictions can be cross-checked
//!   bit-for-bit against measured [`KernelStats`],
//! * **proves in-bounds access** for static index expressions (including
//!   k-padding sentinel slots), and
//! * flags **barrier-in-divergent-branch** hazards declared by the
//!   contract.
//!
//! Every finding carries kernel/phase attribution and a typed severity.
//!
//! # The prediction model
//!
//! The simulator replays tracked accesses grouped by (warp,
//! intra-thread event slot); see `block.rs`. The spec mirrors that:
//! a [`GlobalStream`] describes one strided family of per-lane global
//! accesses (one slot per stream iteration), and a [`SharedStep`]
//! carries the per-lane ordered shared word accesses of one barrier
//! interval. Global and shared events are evaluated with independent
//! slot numbering, which is exact whenever every lane of a warp
//! interleaves the two classes identically (lanes that exit a guarded
//! loop early simply truncate their streams) — true for all shipped
//! kernels and enforced empirically by the sanitizer cross-check gate.
//!
//! Specs describe block 0; shared geometry never depends on the block
//! index, and global streams carry an explicit per-block element stride.
//! When a block's address shift is sector-aligned the evaluator scales
//! block 0 by `grid_dim`; otherwise it walks every block.

use crate::buffer::{DeviceCopy, GpuBuffer};
use crate::device::Kernel;
use crate::occupancy::Occupancy;
pub use crate::sanitize::Severity;
use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// Thresholds the advisory lints fire at. The defaults mirror
/// [`crate::SanitizeConfig`] so the static pass and the dynamic
/// sanitizer agree on what counts as a finding.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Uncoalesced-global lint: fires when one warp/slot group's
    /// predicted sectors-per-access exceeds this.
    pub max_sectors_per_access: f64,
    /// Uncoalesced-global lint: minimum accesses in the group before the
    /// lint applies (tail groups are exempt).
    pub min_accesses_for_coalescing: u64,
    /// Bank-conflict lint: fires at this predicted degree or worse.
    pub min_bank_conflict_degree: u64,
    /// Occupancy lint: fires below this fraction of max resident warps
    /// (unless the kernel declares [`Kernel::low_occupancy_waiver`]).
    pub min_occupancy: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_sectors_per_access: 0.5,
            min_accesses_for_coalescing: 8,
            min_bank_conflict_degree: 8,
            min_occupancy: 0.25,
        }
    }
}

/// The class of defect a [`LintFinding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Zero grid or block dimension.
    EmptyLaunch,
    /// Block dimension over the device maximum.
    BlockTooLarge,
    /// Declared shared memory over the per-block limit.
    SharedMemExceeded,
    /// Declared registers leave no schedulable block on an SM (or exceed
    /// the per-thread architectural cap).
    RegsExceeded,
    /// Static occupancy bound below the threshold, with no waiver.
    LowOccupancy,
    /// A warp/slot group's declared strides predict poor coalescing.
    UncoalescedGlobal,
    /// Declared shared strides predict a bank-conflict degree at or
    /// above the threshold.
    BankConflict,
    /// A static index expression reaches past the end of its buffer.
    GlobalOutOfBounds,
    /// A declared shared word lies past the declared allocation.
    SharedOutOfBounds,
    /// The contract declares a barrier inside a divergent branch.
    BarrierInDivergence,
    /// Static prediction disagrees with dynamic sanitizer measurement.
    SpecMismatch,
    /// The kernel declares no [`AccessSpec`]; only launch validity and
    /// occupancy were checked.
    SpecMissing,
}

impl LintKind {
    /// Hard (must-not-launch) findings are errors; advisory predictions
    /// are warnings.
    pub fn severity(&self) -> Severity {
        match self {
            LintKind::EmptyLaunch
            | LintKind::BlockTooLarge
            | LintKind::SharedMemExceeded
            | LintKind::RegsExceeded
            | LintKind::GlobalOutOfBounds
            | LintKind::SharedOutOfBounds
            | LintKind::BarrierInDivergence
            | LintKind::SpecMismatch => Severity::Error,
            LintKind::LowOccupancy
            | LintKind::UncoalescedGlobal
            | LintKind::BankConflict
            | LintKind::SpecMissing => Severity::Warning,
        }
    }

    /// Stable dotted identifier (`area.check`) used in rendered and JSON
    /// output.
    pub fn code(&self) -> &'static str {
        match self {
            LintKind::EmptyLaunch => "launch.empty",
            LintKind::BlockTooLarge => "launch.block-too-large",
            LintKind::SharedMemExceeded => "launch.shared-mem-exceeded",
            LintKind::RegsExceeded => "launch.regs-exceeded",
            LintKind::LowOccupancy => "occupancy.low",
            LintKind::UncoalescedGlobal => "coalesce.uncoalesced-global",
            LintKind::BankConflict => "bank.conflict",
            LintKind::GlobalOutOfBounds => "bounds.global-oob",
            LintKind::SharedOutOfBounds => "bounds.shared-oob",
            LintKind::BarrierInDivergence => "barrier.divergent",
            LintKind::SpecMismatch => "spec.mismatch",
            LintKind::SpecMissing => "spec.missing",
        }
    }
}

/// One static-analysis diagnostic with kernel/phase attribution.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// What was detected.
    pub kind: LintKind,
    /// Kernel the launch plan belongs to.
    pub kernel: String,
    /// Phase of the declared contract the finding is attributed to
    /// (empty for launch-wide findings like occupancy).
    pub phase: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl LintFinding {
    /// Error/warning classification (delegates to the kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} `{}`",
            self.kind.code(),
            match self.severity() {
                Severity::Error => "ERROR",
                Severity::Warning => "WARN",
            },
            self.kernel,
        )?;
        if !self.phase.is_empty() {
            write!(f, " phase `{}`", self.phase)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Statically predicted machine counters for one launch — the subset of
/// [`KernelStats`] that is derivable from an [`AccessSpec`] alone.
///
/// The derived metrics use the *same* formulas (including special
/// cases) as [`KernelStats::sectors_per_access`] and
/// [`KernelStats::avg_conflict_degree`], so a correct spec reproduces
/// the dynamic measurements bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticPrediction {
    /// Predicted coalesced 32-byte sectors (tracked accesses only).
    pub global_sectors: u64,
    /// Predicted raw lane-level global accesses.
    pub global_accesses: u64,
    /// Predicted coalesced global read bytes (tracked accesses only).
    pub global_read_bytes: u64,
    /// Predicted coalesced global write bytes (tracked accesses only).
    pub global_write_bytes: u64,
    /// Predicted conflict-degree-weighted shared bytes.
    pub shared_eff_bytes: u64,
    /// Predicted raw lane-level shared accesses.
    pub shared_accesses: u64,
    /// Predicted warp/slot groups with a bank conflict.
    pub shared_conflict_groups: u64,
    /// Predicted extra cycles lost to conflicts (degree − 1 per group).
    pub shared_conflict_cycles: u64,
}

impl StaticPrediction {
    /// Merges another prediction into this one (launch-window
    /// aggregation).
    pub fn merge(&mut self, other: &StaticPrediction) {
        self.global_sectors += other.global_sectors;
        self.global_accesses += other.global_accesses;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.shared_eff_bytes += other.shared_eff_bytes;
        self.shared_accesses += other.shared_accesses;
        self.shared_conflict_groups += other.shared_conflict_groups;
        self.shared_conflict_cycles += other.shared_conflict_cycles;
    }

    /// Predicted sectors per raw global access — identical formula to
    /// [`KernelStats::sectors_per_access`] (0 when no tracked accesses).
    pub fn sectors_per_access(&self) -> f64 {
        if self.global_accesses == 0 {
            0.0
        } else {
            self.global_sectors as f64 / self.global_accesses as f64
        }
    }

    /// Predicted average bank-conflict degree — identical formula to
    /// [`KernelStats::avg_conflict_degree`] (1.0 when conflict-free).
    pub fn avg_conflict_degree(&self) -> f64 {
        let groups = self.shared_eff_bytes / 128;
        if groups == 0 {
            return 1.0;
        }
        let base_groups = groups - self.shared_conflict_cycles;
        if base_groups == 0 {
            1.0
        } else {
            groups as f64 / base_groups as f64
        }
    }

    /// True when the derived metrics bit-match the dynamic measurement —
    /// the cross-check contract with [`crate::sanitize`]'s measured
    /// counters. Bulk (`bulk_*`) traffic is mirrored statically with the
    /// replay's own arithmetic (perfectly coalesced sectors, no lane
    /// accesses, no conflict cycles), so the derived metrics agree
    /// exactly — both per launch and when launch windows aggregate bulk
    /// and tracked kernels together — as long as each declared
    /// [`BulkAccess`] charges exactly the bytes it declares.
    pub fn matches(&self, stats: &KernelStats) -> bool {
        self.sectors_per_access().to_bits() == stats.sectors_per_access().to_bits()
            && self.avg_conflict_degree().to_bits() == stats.avg_conflict_degree().to_bits()
    }
}

/// A global buffer as the contract sees it: enough to resolve element
/// indices to simulated device addresses and prove bounds.
#[derive(Debug, Clone)]
pub struct BufferDecl {
    /// Role of the buffer in the kernel (e.g. `"input"`).
    pub label: &'static str,
    /// Simulated device address of element 0.
    pub base_addr: u64,
    /// Elements in the buffer.
    pub len: usize,
    /// Size of one element in bytes.
    pub elem_bytes: usize,
}

impl BufferDecl {
    /// Declares `buf` under `label`.
    pub fn of<T: DeviceCopy>(label: &'static str, buf: &GpuBuffer<T>) -> Self {
        BufferDecl {
            label,
            base_addr: buf.base_addr(),
            len: buf.len(),
            elem_bytes: std::mem::size_of::<T>(),
        }
    }
}

/// One strided family of per-lane tracked global accesses.
///
/// In block `b`, lane `t` accesses element
/// `base + b·block_stride + t·lane_stride + s·slot_stride`
/// for each slot `s < slots`, provided `t < active` and (when `bound` is
/// set) `t·lane_stride + s·slot_stride < bound`. Each slot is one
/// warp-replay group, exactly as the simulator coalesces.
#[derive(Debug, Clone)]
pub struct GlobalStream {
    /// The buffer accessed.
    pub buf: BufferDecl,
    /// True for writes.
    pub write: bool,
    /// Element index of lane 0, slot 0, block 0.
    pub base: usize,
    /// Element stride between adjacent lanes.
    pub lane_stride: usize,
    /// Element stride between consecutive slots of one lane.
    pub slot_stride: usize,
    /// Slots (stream iterations) per lane.
    pub slots: usize,
    /// Element stride between consecutive blocks.
    pub block_stride: usize,
    /// Lanes `0..active` participate.
    pub active: usize,
    /// When set, a lane skips slots whose in-block offset
    /// `t·lane_stride + s·slot_stride` reaches this bound (a guarded
    /// tail loop).
    pub bound: Option<usize>,
}

/// One shared access of one lane within a barrier interval.
#[derive(Debug, Clone, Copy)]
pub struct SharedEv {
    /// First 4-byte shared word touched.
    pub word: u32,
    /// Consecutive words covered (multi-word elements).
    pub words: u32,
    /// True for writes.
    pub write: bool,
}

/// The per-lane ordered shared accesses of one barrier interval
/// (one `step()` call). Entry `t` is lane `t`'s stream; lanes past the
/// end of the vector (or with empty streams) touch nothing. The i-th
/// event of each lane forms one warp-replay group, exactly as the
/// simulator banks shared traffic.
#[derive(Debug, Clone, Default)]
pub struct SharedStep {
    /// Per-lane event streams, indexed by thread id within the block.
    pub lanes: Vec<Vec<SharedEv>>,
}

/// Aggregate traffic declared without per-lane addresses: streaming
/// kernels charge bulk bytes, so the statically checkable properties
/// are the element count against the buffer length (bounds) and the
/// perfectly coalesced sector/byte totals the replay will charge for
/// the same bytes. Lane-level accesses and conflicts stay untracked —
/// the contract is that the kernel charges exactly `elems × elem_bytes`
/// bytes in one `bulk_global_read`/`bulk_global_write` call per entry.
#[derive(Debug, Clone)]
pub struct BulkAccess {
    /// The buffer accessed.
    pub buf: BufferDecl,
    /// Worst-case elements touched.
    pub elems: usize,
    /// True for writes.
    pub write: bool,
}

/// One phase of the declared contract — a named group of barrier
/// intervals with uniform access structure.
#[derive(Debug, Clone, Default)]
pub struct PhaseSpec {
    /// Phase name for attribution (e.g. `"load"`, `"merge"`).
    pub name: String,
    /// When set, the contract declares a `step()` barrier inside a
    /// divergent branch; the string describes the divergence. On real
    /// hardware `__syncthreads()` under divergence deadlocks or leaves
    /// the barrier count undefined — a hard error.
    pub divergent_barrier: Option<String>,
    /// Tracked global access families of this phase.
    pub globals: Vec<GlobalStream>,
    /// Tracked shared accesses, one entry per barrier interval.
    pub shared_steps: Vec<SharedStep>,
    /// Untracked bulk traffic (bounds documentation only).
    pub bulk: Vec<BulkAccess>,
}

impl PhaseSpec {
    /// An empty named phase.
    pub fn named(name: impl Into<String>) -> Self {
        PhaseSpec {
            name: name.into(),
            ..PhaseSpec::default()
        }
    }

    /// A phase that only charges bulk traffic.
    pub fn bulk_only(name: impl Into<String>, bulk: Vec<BulkAccess>) -> Self {
        PhaseSpec {
            name: name.into(),
            bulk,
            ..PhaseSpec::default()
        }
    }
}

/// A kernel's declared access contract (see module docs). The contract
/// describes block 0; per-block global shifts come from each stream's
/// `block_stride`, and shared geometry is block-invariant by
/// construction. Lane-dependent quantities assume the 32-lane warps
/// every shipped [`DeviceSpec`] uses.
#[derive(Debug, Clone, Default)]
pub struct AccessSpec {
    /// The phases of the kernel, in execution order.
    pub phases: Vec<PhaseSpec>,
}

impl AccessSpec {
    /// A contract consisting only of bulk-traffic phases — the shape
    /// streaming kernels (histograms, scatters) declare.
    pub fn bulk(name: impl Into<String>, bulk: Vec<BulkAccess>) -> Self {
        AccessSpec {
            phases: vec![PhaseSpec::bulk_only(name, bulk)],
        }
    }
}

/// The launch-shape facts the validity and occupancy checks need —
/// obtainable from a [`Kernel`] or constructed directly by planners
/// that have no kernel object yet.
#[derive(Debug, Clone)]
pub struct LaunchGeometry {
    /// Kernel name for attribution.
    pub name: String,
    /// Blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Declared shared memory per block, bytes.
    pub shared_bytes_per_block: usize,
    /// Declared registers per thread.
    pub regs_per_thread: usize,
    /// Low-occupancy waiver, if the kernel declares one.
    pub low_occupancy_waiver: Option<&'static str>,
}

impl LaunchGeometry {
    /// Extracts the geometry of a kernel object.
    pub fn of<K: Kernel + ?Sized>(kernel: &K) -> Self {
        LaunchGeometry {
            name: kernel.name().to_string(),
            grid_dim: kernel.grid_dim(),
            block_dim: kernel.block_dim(),
            shared_bytes_per_block: kernel.shared_bytes_per_block(),
            regs_per_thread: kernel.regs_per_thread(),
            low_occupancy_waiver: kernel.low_occupancy_waiver(),
        }
    }
}

/// Per-phase evaluation summary, kept on the report for rendering.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Predicted counters contributed by this phase (whole grid).
    pub pred: StaticPrediction,
    /// Worst predicted coalescing group: (sectors, accesses).
    pub worst_global_group: Option<(u64, u64)>,
    /// Worst predicted bank-conflict degree over the phase's groups
    /// (1 when conflict-free or no shared traffic).
    pub max_bank_degree: u64,
}

/// Everything the static analyzer derived from one launch plan.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Kernel name.
    pub kernel: String,
    /// Blocks in the launch plan.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Findings, errors first.
    pub findings: Vec<LintFinding>,
    /// Lints suppressed by an explicit kernel waiver, with the reason.
    pub waived: Vec<String>,
    /// The static occupancy bound.
    pub occupancy: Occupancy,
    /// Predicted counters (None when the kernel declares no spec).
    pub prediction: Option<StaticPrediction>,
    /// Per-phase evaluation summaries (empty without a spec).
    pub phases: Vec<PhaseReport>,
}

impl LintReport {
    /// True when nothing was found (waived lints do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of hard (error) findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
            .count()
    }

    /// Number of advisory (warning) findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// The findings of one kind.
    pub fn findings_of(&self, kind: LintKind) -> Vec<&LintFinding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// True when a finding of `kind` is present.
    pub fn has(&self, kind: LintKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    /// Human-readable report, one finding per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "========= simt-lint: `{}` (grid {} × block {}) =========\n",
            self.kernel, self.grid_dim, self.block_dim
        );
        out.push_str(&format!(
            "  occupancy bound: {:.3} ({:?}-limited)\n",
            self.occupancy.occupancy, self.occupancy.limiter
        ));
        if let Some(p) = &self.prediction {
            out.push_str(&format!(
                "  predicted: sectors/access {:.4}, conflict degree {:.4}\n",
                p.sectors_per_access(),
                p.avg_conflict_degree()
            ));
        }
        if self.is_clean() {
            out.push_str("  clean: no findings\n");
        } else {
            out.push_str(&format!(
                "  {} error(s), {} warning(s)\n",
                self.error_count(),
                self.warning_count()
            ));
            for f in &self.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        for w in &self.waived {
            out.push_str(&format!("  waived: {w}\n"));
        }
        out
    }

    /// The report as a JSON object (hand-rolled; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    r#"{{"kind":"{}","severity":"{}","kernel":"{}","phase":"{}","detail":"{}"}}"#,
                    f.kind.code(),
                    match f.severity() {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    },
                    json_escape(&f.kernel),
                    json_escape(&f.phase),
                    json_escape(&f.detail),
                )
            })
            .collect();
        let waived: Vec<String> = self
            .waived
            .iter()
            .map(|w| format!(r#""{}""#, json_escape(w)))
            .collect();
        let pred = match &self.prediction {
            Some(p) => format!(
                r#"{{"sectors_per_access":{},"conflict_degree":{},"global_sectors":{},"global_accesses":{},"shared_eff_bytes":{},"shared_conflict_cycles":{}}}"#,
                p.sectors_per_access(),
                p.avg_conflict_degree(),
                p.global_sectors,
                p.global_accesses,
                p.shared_eff_bytes,
                p.shared_conflict_cycles
            ),
            None => "null".to_string(),
        };
        format!(
            r#"{{"kernel":"{}","grid_dim":{},"block_dim":{},"occupancy":{},"errors":{},"warnings":{},"prediction":{},"findings":[{}],"waived":[{}]}}"#,
            json_escape(&self.kernel),
            self.grid_dim,
            self.block_dim,
            self.occupancy.occupancy,
            self.error_count(),
            self.warning_count(),
            pred,
            findings.join(","),
            waived.join(",")
        )
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serializes a batch of lint reports as one JSON array — the artifact
/// format the CI lint sweep uploads.
pub fn reports_to_json(reports: &[LintReport]) -> String {
    let items: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!("[{}]", items.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints launch validity and occupancy from geometry alone — the entry
/// point for planners that have no kernel object yet (the cost model
/// rejects hard-failing configurations before anything is built).
pub fn lint_geometry(spec: &DeviceSpec, geom: &LaunchGeometry, cfg: &LintConfig) -> LintReport {
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    let launch_wide = |kind: LintKind, detail: String| LintFinding {
        kind,
        kernel: geom.name.clone(),
        phase: String::new(),
        detail,
    };
    if geom.grid_dim == 0 || geom.block_dim == 0 {
        findings.push(launch_wide(
            LintKind::EmptyLaunch,
            format!(
                "grid {} × block {}: both dimensions must be nonzero",
                geom.grid_dim, geom.block_dim
            ),
        ));
    }
    if geom.block_dim > spec.max_threads_per_block {
        findings.push(launch_wide(
            LintKind::BlockTooLarge,
            format!(
                "block dim {} exceeds device limit {}",
                geom.block_dim, spec.max_threads_per_block
            ),
        ));
    }
    if geom.shared_bytes_per_block > spec.shared_mem_per_block {
        findings.push(launch_wide(
            LintKind::SharedMemExceeded,
            format!(
                "shared memory {} B exceeds per-block limit {} B",
                geom.shared_bytes_per_block, spec.shared_mem_per_block
            ),
        ));
    }
    if geom.regs_per_thread > spec.max_regs_per_thread {
        findings.push(launch_wide(
            LintKind::RegsExceeded,
            format!(
                "{} registers per thread exceeds architectural cap {}",
                geom.regs_per_thread, spec.max_regs_per_thread
            ),
        ));
    } else if geom.block_dim > 0 && geom.regs_per_thread * geom.block_dim > spec.regs_per_sm {
        findings.push(launch_wide(
            LintKind::RegsExceeded,
            format!(
                "{} registers × {} threads = {} exceeds the {}-register SM file: no block can be scheduled",
                geom.regs_per_thread,
                geom.block_dim,
                geom.regs_per_thread * geom.block_dim,
                spec.regs_per_sm
            ),
        ));
    }
    let occupancy = Occupancy::compute(
        spec,
        geom.block_dim.max(1),
        geom.shared_bytes_per_block,
        geom.regs_per_thread,
    );
    if occupancy.occupancy < cfg.min_occupancy {
        match geom.low_occupancy_waiver {
            Some(reason) => waived.push(format!(
                "occupancy.low ({:.3} < {:.2}): {reason}",
                occupancy.occupancy, cfg.min_occupancy
            )),
            None => findings.push(launch_wide(
                LintKind::LowOccupancy,
                format!(
                    "static occupancy bound {:.3} below threshold {:.2} ({:?}-limited)",
                    occupancy.occupancy, cfg.min_occupancy, occupancy.limiter
                ),
            )),
        }
    }
    LintReport {
        kernel: geom.name.clone(),
        grid_dim: geom.grid_dim,
        block_dim: geom.block_dim,
        findings,
        waived,
        occupancy,
        prediction: None,
        phases: Vec::new(),
    }
}

/// Runs the full static analysis on a kernel object: geometry checks
/// plus the [`AccessSpec`]-driven predictions, bounds proofs, and
/// barrier-divergence checks. Executes no simulated step.
pub fn lint_kernel<K: Kernel + ?Sized>(
    spec: &DeviceSpec,
    kernel: &K,
    cfg: &LintConfig,
) -> LintReport {
    let geom = LaunchGeometry::of(kernel);
    let mut report = lint_geometry(spec, &geom, cfg);
    match kernel.access_spec() {
        None => {
            report.findings.push(LintFinding {
                kind: LintKind::SpecMissing,
                kernel: geom.name.clone(),
                phase: String::new(),
                detail:
                    "kernel declares no AccessSpec; only launch validity and occupancy were checked"
                        .to_string(),
            });
        }
        Some(access) => analyze_spec(spec, &geom, &access, cfg, &mut report),
    }
    sort_findings(&mut report.findings);
    report
}

fn sort_findings(findings: &mut [LintFinding]) {
    findings.sort_by_key(|f| match f.severity() {
        Severity::Error => 0u8,
        Severity::Warning => 1,
    });
}

/// Evaluates the declared contract against the launch geometry, filling
/// `report.prediction` / `report.phases` and appending findings.
fn analyze_spec(
    spec: &DeviceSpec,
    geom: &LaunchGeometry,
    access: &AccessSpec,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    let shared_words_avail = (geom.shared_bytes_per_block / 4) as u32;
    let mut total = StaticPrediction::default();
    for phase in &access.phases {
        let mut pr = PhaseReport {
            name: phase.name.clone(),
            pred: StaticPrediction::default(),
            worst_global_group: None,
            max_bank_degree: 1,
        };
        if let Some(div) = &phase.divergent_barrier {
            report.findings.push(LintFinding {
                kind: LintKind::BarrierInDivergence,
                kernel: geom.name.clone(),
                phase: phase.name.clone(),
                detail: format!("barrier placed inside divergent branch: {div}"),
            });
        }
        for gs in &phase.globals {
            eval_global_stream(spec, geom, phase, gs, cfg, &mut pr, report);
        }
        for step in &phase.shared_steps {
            eval_shared_step(spec, geom, phase, step, shared_words_avail, &mut pr, report);
        }
        for bulk in &phase.bulk {
            if bulk.elems > bulk.buf.len {
                report.findings.push(LintFinding {
                    kind: LintKind::GlobalOutOfBounds,
                    kernel: geom.name.clone(),
                    phase: phase.name.clone(),
                    detail: format!(
                        "bulk {} of {} elements overruns `{}` (len {})",
                        if bulk.write { "write" } else { "read" },
                        bulk.elems,
                        bulk.buf.label,
                        bulk.buf.len
                    ),
                });
            }
            // mirror the replay's bulk arithmetic (`bulk_global_read` /
            // `bulk_global_write`): bytes / 32 sectors per call, no lane
            // accesses — so windows aggregating bulk and tracked
            // launches still bit-match the measurement
            let bytes = (bulk.elems * bulk.buf.elem_bytes) as u64;
            pr.pred.global_sectors += bytes / 32;
            if bulk.write {
                pr.pred.global_write_bytes += bytes;
            } else {
                pr.pred.global_read_bytes += bytes;
            }
        }
        if let Some((sectors, accesses)) = pr.worst_global_group {
            let spa = sectors as f64 / accesses as f64;
            if spa > cfg.max_sectors_per_access && accesses >= cfg.min_accesses_for_coalescing {
                report.findings.push(LintFinding {
                    kind: LintKind::UncoalescedGlobal,
                    kernel: geom.name.clone(),
                    phase: phase.name.clone(),
                    detail: format!(
                        "declared strides predict {sectors} sectors over {accesses} accesses in one warp group ({spa:.3} sectors/access > {:.3})",
                        cfg.max_sectors_per_access
                    ),
                });
            }
        }
        if pr.max_bank_degree >= cfg.min_bank_conflict_degree {
            report.findings.push(LintFinding {
                kind: LintKind::BankConflict,
                kernel: geom.name.clone(),
                phase: phase.name.clone(),
                detail: format!(
                    "declared shared strides predict a {}-way bank conflict (threshold {})",
                    pr.max_bank_degree, cfg.min_bank_conflict_degree
                ),
            });
        }
        total.merge(&pr.pred);
        report.phases.push(pr);
    }
    report.prediction = Some(total);
}

/// Evaluates one global stream with the replay's coalescing arithmetic:
/// per (warp, slot) group, distinct `(sector, write)` tags each cost one
/// 32-byte sector; accesses count raw lane events.
fn eval_global_stream(
    spec: &DeviceSpec,
    geom: &LaunchGeometry,
    phase: &PhaseSpec,
    gs: &GlobalStream,
    _cfg: &LintConfig,
    pr: &mut PhaseReport,
    report: &mut LintReport,
) {
    let ws = spec.warp_size;
    let eb = gs.buf.elem_bytes as u64;
    if geom.block_dim == 0 || geom.grid_dim == 0 || gs.slots == 0 || gs.active == 0 {
        return;
    }
    // A block shift that is sector-aligned preserves the group/sector
    // structure exactly, so block 0 × grid_dim is bit-identical to
    // walking every block.
    let uniform = geom.grid_dim == 1 || (gs.block_stride as u64 * eb).is_multiple_of(32);
    let blocks: Vec<usize> = if uniform {
        vec![0]
    } else {
        (0..geom.grid_dim).collect()
    };
    let scale = if uniform { geom.grid_dim as u64 } else { 1 };
    let mut max_elem: Option<usize> = None;
    let warps = geom.block_dim.div_ceil(ws);
    let mut tags: Vec<u64> = Vec::new();
    for &b in &blocks {
        let block_base = gs.base + b * gs.block_stride;
        for w in 0..warps {
            let lo = w * ws;
            let hi = ((w + 1) * ws).min(geom.block_dim).min(gs.active);
            if lo >= hi {
                continue;
            }
            for s in 0..gs.slots {
                tags.clear();
                let mut events = 0u64;
                for t in lo..hi {
                    let off = t * gs.lane_stride + s * gs.slot_stride;
                    if let Some(bound) = gs.bound {
                        if off >= bound {
                            continue;
                        }
                    }
                    let elem = block_base + off;
                    // track the worst element for the bounds proof;
                    // under the uniform fast path the last block attains
                    // the true maximum via the same in-block offset
                    let worst = if uniform {
                        elem + (geom.grid_dim - 1) * gs.block_stride
                    } else {
                        elem
                    };
                    max_elem = Some(max_elem.map_or(worst, |m| m.max(worst)));
                    let addr = gs.buf.base_addr + elem as u64 * eb;
                    let first = addr / 32;
                    let last = (addr + eb - 1) / 32;
                    for sec in first..=last {
                        tags.push((sec << 1) | gs.write as u64);
                    }
                    events += 1;
                }
                if events == 0 {
                    continue;
                }
                tags.sort_unstable();
                tags.dedup();
                let sectors = tags.len() as u64;
                pr.pred.global_sectors += sectors * scale;
                pr.pred.global_accesses += events * scale;
                if gs.write {
                    pr.pred.global_write_bytes += 32 * sectors * scale;
                } else {
                    pr.pred.global_read_bytes += 32 * sectors * scale;
                }
                let worse = match pr.worst_global_group {
                    None => true,
                    Some((ps, pa)) => sectors as f64 / events as f64 > ps as f64 / pa as f64,
                };
                if worse {
                    pr.worst_global_group = Some((sectors, events));
                }
            }
        }
    }
    if let Some(m) = max_elem {
        if m >= gs.buf.len {
            report.findings.push(LintFinding {
                kind: LintKind::GlobalOutOfBounds,
                kernel: geom.name.clone(),
                phase: phase.name.clone(),
                detail: format!(
                    "static index expression reaches element {} of `{}` (len {})",
                    m, gs.buf.label, gs.buf.len
                ),
            });
        }
    }
}

/// Evaluates one shared barrier interval with the replay's banking
/// arithmetic: per (warp, event-position) group, deduped words are
/// binned into banks; the max bin is the conflict degree.
fn eval_shared_step(
    spec: &DeviceSpec,
    geom: &LaunchGeometry,
    phase: &PhaseSpec,
    step: &SharedStep,
    shared_words_avail: u32,
    pr: &mut PhaseReport,
    report: &mut LintReport,
) {
    let ws = spec.warp_size;
    let banks = spec.shared_banks;
    let grid = geom.grid_dim as u64;
    let warps = geom.block_dim.div_ceil(ws);
    let mut words: Vec<u32> = Vec::new();
    let mut bank_counts = vec![0u32; banks];
    let mut max_end: u32 = 0;
    let empty: Vec<SharedEv> = Vec::new();
    for w in 0..warps {
        let lo = w * ws;
        let hi = ((w + 1) * ws).min(geom.block_dim);
        let max_slots = (lo..hi)
            .map(|t| step.lanes.get(t).map_or(0, |l| l.len()))
            .max()
            .unwrap_or(0);
        for s in 0..max_slots {
            words.clear();
            let mut reads = 0u64;
            let mut writes = 0u64;
            for t in lo..hi {
                let lane = step.lanes.get(t).unwrap_or(&empty);
                let Some(ev) = lane.get(s) else { continue };
                for wd in ev.word..ev.word + ev.words {
                    words.push(wd);
                }
                max_end = max_end.max(ev.word + ev.words);
                if ev.write {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
            if reads + writes == 0 {
                continue;
            }
            words.sort_unstable();
            words.dedup();
            for c in bank_counts.iter_mut() {
                *c = 0;
            }
            let mut degree = 1u32;
            for &wd in &words {
                let bank = wd as usize % banks;
                bank_counts[bank] += 1;
                degree = degree.max(bank_counts[bank]);
            }
            pr.pred.shared_accesses += (reads + writes) * grid;
            pr.pred.shared_eff_bytes += degree as u64 * (ws as u64 * 4) * grid;
            if degree > 1 {
                pr.pred.shared_conflict_groups += grid;
                pr.pred.shared_conflict_cycles += (degree as u64 - 1) * grid;
            }
            pr.max_bank_degree = pr.max_bank_degree.max(degree as u64);
        }
    }
    if max_end > shared_words_avail {
        report.findings.push(LintFinding {
            kind: LintKind::SharedOutOfBounds,
            kernel: geom.name.clone(),
            phase: phase.name.clone(),
            detail: format!(
                "declared shared access reaches word {} but the kernel declares only {} words ({} B)",
                max_end,
                shared_words_avail,
                geom.shared_bytes_per_block
            ),
        });
    }
}

/// Compares a launch's static prediction against its measured dynamic
/// counters; a drift produces a [`LintKind::SpecMismatch`] finding —
/// the gate that keeps static analysis honest.
pub fn cross_check(report: &LintReport, stats: &KernelStats) -> Option<LintFinding> {
    let pred = report.prediction.as_ref()?;
    if pred.matches(stats) {
        return None;
    }
    Some(LintFinding {
        kind: LintKind::SpecMismatch,
        kernel: report.kernel.clone(),
        phase: String::new(),
        detail: format!(
            "static prediction (sectors/access {}, degree {}) disagrees with measurement (sectors/access {}, degree {})",
            pred.sectors_per_access(),
            pred.avg_conflict_degree(),
            stats.sectors_per_access(),
            stats.avg_conflict_degree()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    fn geom(block: usize, grid: usize) -> LaunchGeometry {
        LaunchGeometry {
            name: "unit".to_string(),
            grid_dim: grid,
            block_dim: block,
            shared_bytes_per_block: 4096,
            regs_per_thread: 32,
            low_occupancy_waiver: None,
        }
    }

    fn eval(spec_access: AccessSpec, g: LaunchGeometry) -> LintReport {
        let mut report = lint_geometry(&titan(), &g, &LintConfig::default());
        analyze_spec(
            &titan(),
            &g,
            &spec_access,
            &LintConfig::default(),
            &mut report,
        );
        report
    }

    #[test]
    fn contiguous_f32_warp_is_four_sectors() {
        // 32 lanes × 4 B contiguous = 128 B = 4 sectors (mirrors the
        // block.rs replay tests)
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "load".into(),
                globals: vec![GlobalStream {
                    buf: BufferDecl {
                        label: "in",
                        base_addr: 0x1000,
                        len: 32,
                        elem_bytes: 4,
                    },
                    write: false,
                    base: 0,
                    lane_stride: 1,
                    slot_stride: 0,
                    slots: 1,
                    block_stride: 0,
                    active: 32,
                    bound: None,
                }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(32, 1));
        let p = r.prediction.unwrap();
        assert_eq!(p.global_sectors, 4);
        assert_eq!(p.global_accesses, 32);
        assert_eq!(p.global_read_bytes, 128);
        assert!((p.sectors_per_access() - 0.125).abs() < 1e-12);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn strided_global_is_uncoalesced() {
        // stride-8 f32: every lane in its own sector → 32 sectors / 32
        // accesses = 1.0 > 0.5 threshold
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "scatter".into(),
                globals: vec![GlobalStream {
                    buf: BufferDecl {
                        label: "out",
                        base_addr: 0x1000,
                        len: 256,
                        elem_bytes: 4,
                    },
                    write: true,
                    base: 0,
                    lane_stride: 8,
                    slot_stride: 0,
                    slots: 1,
                    block_stride: 0,
                    active: 32,
                    bound: None,
                }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(32, 1));
        assert!(r.has(LintKind::UncoalescedGlobal), "{}", r.render());
        let p = r.prediction.unwrap();
        assert_eq!(p.global_sectors, 32);
        assert!((p.sectors_per_access() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_two_shared_predicts_two_way_conflict() {
        // 32 lanes reading words 0,2,4,..,62 → 2 per bank → degree 2,
        // eff 256 B, cycles 1 (mirrors block.rs stride-2 test)
        let lanes: Vec<Vec<SharedEv>> = (0..32)
            .map(|t| {
                vec![SharedEv {
                    word: (t * 2) as u32,
                    words: 1,
                    write: false,
                }]
            })
            .collect();
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "exchange".into(),
                shared_steps: vec![SharedStep { lanes }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(32, 1));
        let p = r.prediction.unwrap();
        assert_eq!(p.shared_eff_bytes, 256);
        assert_eq!(p.shared_conflict_cycles, 1);
        assert_eq!(p.shared_accesses, 32);
        assert!((p.avg_conflict_degree() - 2.0).abs() < 1e-12);
        // degree 2 is below the lint threshold of 8 → no finding
        assert!(!r.has(LintKind::BankConflict));
    }

    #[test]
    fn stride_32_shared_trips_bank_conflict_lint() {
        let lanes: Vec<Vec<SharedEv>> = (0..32)
            .map(|t| {
                vec![SharedEv {
                    word: (t * 32) as u32,
                    words: 1,
                    write: true,
                }]
            })
            .collect();
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "transpose".into(),
                shared_steps: vec![SharedStep { lanes }],
                ..PhaseSpec::default()
            }],
        };
        let mut g = geom(32, 1);
        g.shared_bytes_per_block = 32 * 32 * 4;
        let r = eval(access, g);
        let p = r.prediction.unwrap();
        assert_eq!(p.shared_conflict_cycles, 31);
        assert!((p.avg_conflict_degree() - 32.0).abs() < 1e-12);
        let f = &r.findings_of(LintKind::BankConflict)[0];
        assert_eq!(f.phase, "transpose");
    }

    #[test]
    fn partial_warp_shared_eff_bytes_full_line() {
        // 8 lanes, conflict-free: replay still charges a full 128-B line
        let lanes: Vec<Vec<SharedEv>> = (0..8)
            .map(|t| {
                vec![SharedEv {
                    word: t as u32,
                    words: 1,
                    write: false,
                }]
            })
            .collect();
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "tail".into(),
                shared_steps: vec![SharedStep { lanes }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(8, 1));
        let p = r.prediction.unwrap();
        assert_eq!(p.shared_eff_bytes, 128);
        assert_eq!(p.shared_accesses, 8);
    }

    #[test]
    fn oob_global_and_shared_are_errors() {
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "store".into(),
                globals: vec![GlobalStream {
                    buf: BufferDecl {
                        label: "out",
                        base_addr: 0x1000,
                        len: 30, // lanes 30, 31 overrun
                        elem_bytes: 4,
                    },
                    write: true,
                    base: 0,
                    lane_stride: 1,
                    slot_stride: 0,
                    slots: 1,
                    block_stride: 0,
                    active: 32,
                    bound: None,
                }],
                shared_steps: vec![SharedStep {
                    lanes: vec![vec![SharedEv {
                        word: 2000,
                        words: 1,
                        write: false,
                    }]],
                }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(32, 1)); // 4096 B shared = 1024 words
        assert!(r.has(LintKind::GlobalOutOfBounds), "{}", r.render());
        assert!(r.has(LintKind::SharedOutOfBounds), "{}", r.render());
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn guarded_tail_is_in_bounds() {
        // 40 elements over 32 lanes, 2 slots, bound 40: max element 39
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "store".into(),
                globals: vec![GlobalStream {
                    buf: BufferDecl {
                        label: "out",
                        base_addr: 0x1000,
                        len: 40,
                        elem_bytes: 4,
                    },
                    write: true,
                    base: 0,
                    lane_stride: 1,
                    slot_stride: 32,
                    slots: 2,
                    block_stride: 40,
                    active: 32,
                    bound: Some(40),
                }],
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(32, 1));
        assert!(!r.has(LintKind::GlobalOutOfBounds), "{}", r.render());
        // accesses: 32 + 8 guarded tail
        assert_eq!(r.prediction.unwrap().global_accesses, 40);
    }

    #[test]
    fn non_aligned_block_stride_walks_every_block() {
        // block stride of 33 f32 elements = 132 B, not sector-aligned:
        // block 1 straddles sectors differently than block 0
        let mk = |_grid: usize| AccessSpec {
            phases: vec![PhaseSpec {
                name: "load".into(),
                globals: vec![GlobalStream {
                    buf: BufferDecl {
                        label: "in",
                        base_addr: 0x1000,
                        len: 1024,
                        elem_bytes: 4,
                    },
                    write: false,
                    base: 0,
                    lane_stride: 1,
                    slot_stride: 0,
                    slots: 1,
                    block_stride: 33,
                    active: 32,
                    bound: None,
                }],
                ..PhaseSpec::default()
            }],
        };
        let r1 = eval(mk(1), geom(32, 1));
        let r2 = eval(mk(2), geom(32, 2));
        let p1 = r1.prediction.unwrap();
        let p2 = r2.prediction.unwrap();
        assert_eq!(p1.global_sectors, 4);
        // second block starts 132 B in → offset 4 into a sector → 5 sectors
        assert_eq!(p2.global_sectors, 4 + 5);
        assert_eq!(p2.global_accesses, 64);
    }

    #[test]
    fn geometry_hard_errors() {
        let cfg = LintConfig::default();
        let mut g = geom(2048, 1);
        let r = lint_geometry(&titan(), &g, &cfg);
        assert!(r.has(LintKind::BlockTooLarge));
        g = geom(0, 1);
        assert!(lint_geometry(&titan(), &g, &cfg).has(LintKind::EmptyLaunch));
        g = geom(256, 1);
        g.shared_bytes_per_block = 64 * 1024;
        assert!(lint_geometry(&titan(), &g, &cfg).has(LintKind::SharedMemExceeded));
        g = geom(1024, 1);
        g.regs_per_thread = 65; // 65 × 1024 > 64K
        assert!(lint_geometry(&titan(), &g, &cfg).has(LintKind::RegsExceeded));
        g = geom(256, 1);
        g.regs_per_thread = 300; // over the 255 per-thread cap
        assert!(lint_geometry(&titan(), &g, &cfg).has(LintKind::RegsExceeded));
    }

    #[test]
    fn occupancy_waiver_suppresses_warning() {
        let cfg = LintConfig::default();
        let mut g = geom(128, 1);
        g.shared_bytes_per_block = 40 * 1024; // 2 blocks/SM → 8 warps of 64
        let r = lint_geometry(&titan(), &g, &cfg);
        assert!(r.has(LintKind::LowOccupancy));
        g.low_occupancy_waiver = Some("heap capacity trade (Section 4.1)");
        let r = lint_geometry(&titan(), &g, &cfg);
        assert!(!r.has(LintKind::LowOccupancy));
        assert_eq!(r.waived.len(), 1);
    }

    #[test]
    fn divergent_barrier_is_hard_error_with_phase_attribution() {
        let access = AccessSpec {
            phases: vec![PhaseSpec {
                name: "reduce".into(),
                divergent_barrier: Some("step() under `if tid < half`".to_string()),
                ..PhaseSpec::default()
            }],
        };
        let r = eval(access, geom(64, 1));
        let f = &r.findings_of(LintKind::BarrierInDivergence)[0];
        assert_eq!(f.severity(), Severity::Error);
        assert_eq!(f.phase, "reduce");
        assert_eq!(f.kernel, "unit");
    }

    #[test]
    fn cross_check_flags_drift() {
        let mut report = lint_geometry(&titan(), &geom(32, 1), &LintConfig::default());
        report.prediction = Some(StaticPrediction {
            global_sectors: 4,
            global_accesses: 32,
            ..StaticPrediction::default()
        });
        let mut stats = KernelStats {
            global_sectors: 4,
            global_accesses: 32,
            ..KernelStats::default()
        };
        assert!(cross_check(&report, &stats).is_none());
        stats.global_sectors = 32;
        let f = cross_check(&report, &stats).unwrap();
        assert_eq!(f.kind, LintKind::SpecMismatch);
        assert_eq!(f.severity(), Severity::Error);
    }

    #[test]
    fn prediction_formulas_mirror_kernel_stats() {
        let p = StaticPrediction {
            shared_eff_bytes: 2 * 128,
            shared_conflict_cycles: 1,
            ..StaticPrediction::default()
        };
        let s = KernelStats {
            shared_eff_bytes: 2 * 128,
            shared_conflict_cycles: 1,
            ..KernelStats::default()
        };
        assert_eq!(
            p.avg_conflict_degree().to_bits(),
            s.avg_conflict_degree().to_bits()
        );
        assert_eq!(
            StaticPrediction::default().avg_conflict_degree().to_bits(),
            KernelStats::default().avg_conflict_degree().to_bits()
        );
        assert_eq!(
            StaticPrediction::default().sectors_per_access().to_bits(),
            KernelStats::default().sectors_per_access().to_bits()
        );
    }

    #[test]
    fn report_renders_and_serializes() {
        let access = AccessSpec::bulk(
            "stream",
            vec![BulkAccess {
                buf: BufferDecl {
                    label: "in",
                    base_addr: 0x1000,
                    len: 100,
                    elem_bytes: 4,
                },
                elems: 100,
                write: false,
            }],
        );
        let r = eval(access, geom(256, 4));
        assert!(r.is_clean());
        let text = r.render();
        assert!(text.contains("simt-lint"));
        assert!(text.contains("clean"));
        let json = r.to_json();
        assert!(json.contains(r#""errors":0"#));
        assert!(json.contains(r#""prediction":{"#));
        let arr = reports_to_json(&[r]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
    }
}
