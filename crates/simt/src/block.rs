//! Block execution context: shared memory, tracked lanes, and the
//! warp-lockstep replay that computes coalescing and bank conflicts.

use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::buffer::{DeviceCopy, GpuBuffer};
use crate::sanitize::LaunchSanitizer;
use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// One tracked memory access, logged in thread order and replayed in
/// warp-lockstep order.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Global { addr: u64, bytes: u32, write: bool },
    Shared { word: u32, words: u32, write: bool },
}

/// Handle to a shared-memory array allocated by [`BlockCtx::alloc_shared`].
pub struct SharedHandle<T> {
    id: usize,
    len: usize,
    base_word: u32,
    _ty: PhantomData<T>,
}

impl<T> Clone for SharedHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedHandle<T> {}

impl<T> SharedHandle<T> {
    /// Number of elements in the shared array.
    pub fn len(&self) -> usize {
        self.len
    }
    /// True when the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct SharedArray {
    data: Box<dyn Any>,
}

/// Execution context of one thread block.
///
/// Kernels allocate shared arrays up front, then run a sequence of
/// [`BlockCtx::step`] rounds (the code between `__syncthreads()`).
pub struct BlockCtx {
    /// This block's index within the grid.
    pub block_idx: usize,
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    block_dim: usize,
    spec: DeviceSpec,
    shared: Vec<SharedArray>,
    shared_words_used: u32,
    events: Vec<Vec<Ev>>,
    stats: KernelStats,
    /// Per-launch sanitizer, attached by `Device::launch` when enabled.
    san: Option<Rc<RefCell<LaunchSanitizer>>>,
    // replay scratch
    scratch_words: Vec<u32>,
    scratch_addrs: Vec<u64>,
}

impl BlockCtx {
    pub(crate) fn new(
        spec: DeviceSpec,
        block_idx: usize,
        grid_dim: usize,
        block_dim: usize,
    ) -> Self {
        Self {
            block_idx,
            grid_dim,
            block_dim,
            spec,
            shared: Vec::new(),
            shared_words_used: 0,
            events: (0..block_dim).map(|_| Vec::new()).collect(),
            stats: KernelStats::default(),
            san: None,
            scratch_words: Vec::new(),
            scratch_addrs: Vec::new(),
        }
    }

    /// Attaches the launch's sanitizer (see [`crate::sanitize`]).
    pub(crate) fn set_sanitizer(&mut self, san: Rc<RefCell<LaunchSanitizer>>) {
        self.san = Some(san);
    }

    /// Threads in this block.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// The device spec the kernel runs on.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Shared-memory bytes allocated so far by this block.
    pub fn shared_bytes_used(&self) -> usize {
        self.shared_words_used as usize * 4
    }

    /// Allocates a shared-memory array of `len` elements, default-filled.
    ///
    /// # Panics
    /// If the allocation exceeds the per-block shared memory limit — the
    /// launch path checks declared usage first, so hitting this indicates
    /// a kernel whose declaration understates its needs.
    pub fn alloc_shared<T: DeviceCopy>(&mut self, len: usize) -> SharedHandle<T> {
        let words_per_elem = Self::words_per_elem::<T>();
        let words = (len * words_per_elem) as u32;
        let base_word = self.shared_words_used;
        self.shared_words_used += words;
        assert!(
            self.shared_bytes_used() <= self.spec.shared_mem_per_block,
            "shared memory overflow: {} bytes used, {} available",
            self.shared_bytes_used(),
            self.spec.shared_mem_per_block
        );
        self.shared.push(SharedArray {
            data: Box::new(vec![T::default(); len]),
        });
        if let Some(san) = &self.san {
            san.borrow_mut()
                .on_alloc_shared(base_word, words, len, std::any::type_name::<T>());
        }
        SharedHandle {
            id: self.shared.len() - 1,
            len,
            base_word,
            _ty: PhantomData,
        }
    }

    fn words_per_elem<T>() -> usize {
        std::mem::size_of::<T>().div_ceil(4).max(1)
    }

    /// Runs one warp-synchronous step: `f` executes for every thread of
    /// the block; tracked accesses are then replayed in warp lockstep to
    /// account coalescing and bank conflicts.
    pub fn step<F: FnMut(&mut Lane<'_>)>(&mut self, mut f: F) {
        for evs in &mut self.events {
            evs.clear();
        }
        let step_idx = self.stats.steps as usize;
        if let Some(san) = &self.san {
            san.borrow_mut().begin_step(step_idx);
        }
        let mut ops_acc: u64 = 0;
        for tid in 0..self.block_dim {
            let mut lane = Lane {
                tid,
                block_idx: self.block_idx,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
                step: step_idx,
                shared: &mut self.shared,
                events: &mut self.events[tid],
                ops_acc: &mut ops_acc,
                san: self.san.as_ref(),
            };
            f(&mut lane);
        }
        if let Some(san) = &self.san {
            san.borrow_mut().end_step(&self.spec);
        }
        self.stats.compute_ops += ops_acc;
        self.stats.steps += 1;
        self.replay();
    }

    /// Warp-lockstep replay of the step's events.
    ///
    /// For each warp and each intra-thread event slot, the (up to 32)
    /// simultaneous accesses are grouped: global accesses coalesce into
    /// distinct 32-byte sectors; shared accesses pay the maximum per-bank
    /// multiplicity over distinct words (same-word broadcast is free).
    fn replay(&mut self) {
        let ws = self.spec.warp_size;
        let banks = self.spec.shared_banks;
        let num_warps = self.block_dim.div_ceil(ws);
        for w in 0..num_warps {
            let lo = w * ws;
            let hi = ((w + 1) * ws).min(self.block_dim);
            let max_slots = (lo..hi).map(|t| self.events[t].len()).max().unwrap_or(0);
            for slot in 0..max_slots {
                self.scratch_words.clear();
                self.scratch_addrs.clear();
                let mut shared_reads = 0u64;
                let mut shared_writes = 0u64;
                let mut global_read_ev = 0u64;
                let mut global_write_ev = 0u64;
                for t in lo..hi {
                    if let Some(&ev) = self.events[t].get(slot) {
                        match ev {
                            Ev::Global { addr, bytes, write } => {
                                let first = addr / 32;
                                let last = (addr + bytes as u64 - 1) / 32;
                                for s in first..=last {
                                    self.scratch_addrs.push((s << 1) | write as u64);
                                }
                                if write {
                                    global_write_ev += 1;
                                } else {
                                    global_read_ev += 1;
                                }
                            }
                            Ev::Shared { word, words, write } => {
                                for dw in 0..words {
                                    self.scratch_words.push(word + dw);
                                }
                                if write {
                                    shared_writes += 1;
                                } else {
                                    shared_reads += 1;
                                }
                            }
                        }
                    }
                }
                // --- global coalescing: distinct sectors, reads and writes
                // tracked separately (the write flag rides in bit 0)
                if !self.scratch_addrs.is_empty() {
                    self.scratch_addrs.sort_unstable();
                    self.scratch_addrs.dedup();
                    for &tagged in self.scratch_addrs.iter() {
                        let write = tagged & 1 == 1;
                        if write {
                            self.stats.global_write_bytes += 32;
                        } else {
                            self.stats.global_read_bytes += 32;
                        }
                        self.stats.global_sectors += 1;
                    }
                    self.stats.global_accesses += global_read_ev + global_write_ev;
                }
                // --- shared bank conflicts over distinct words
                if !self.scratch_words.is_empty() {
                    self.scratch_words.sort_unstable();
                    self.scratch_words.dedup();
                    let mut bank_counts = [0u32; 64];
                    for &word in self.scratch_words.iter() {
                        bank_counts[(word as usize) % banks] += 1;
                    }
                    let degree = *bank_counts[..banks].iter().max().unwrap() as u64;
                    debug_assert!(degree >= 1);
                    self.stats.shared_accesses += shared_reads + shared_writes;
                    self.stats.shared_eff_bytes += degree * (ws as u64) * 4;
                    if degree > 1 {
                        self.stats.shared_conflict_groups += 1;
                        self.stats.shared_conflict_cycles += degree - 1;
                    }
                }
            }
        }
    }

    // ----- bulk accounting for streaming kernels -------------------------

    /// Charges `bytes` of perfectly coalesced global reads.
    pub fn bulk_global_read(&mut self, bytes: u64) {
        self.stats.global_read_bytes += bytes;
        self.stats.global_sectors += bytes / 32;
    }

    /// Charges `bytes` of perfectly coalesced global writes.
    pub fn bulk_global_write(&mut self, bytes: u64) {
        self.stats.global_write_bytes += bytes;
        self.stats.global_sectors += bytes / 32;
    }

    /// Charges `bytes` of conflict-free shared traffic.
    pub fn bulk_shared(&mut self, bytes: u64) {
        self.stats.shared_eff_bytes += bytes;
        self.stats.shared_accesses += bytes / 4;
    }

    /// Charges shared traffic with an explicit average conflict degree.
    pub fn bulk_shared_with_conflicts(&mut self, bytes: u64, avg_degree: f64) {
        assert!(avg_degree >= 1.0);
        let eff = (bytes as f64 * avg_degree) as u64;
        self.stats.shared_eff_bytes += eff;
        self.stats.shared_accesses += bytes / 4;
        let lines = bytes / 128;
        let extra = ((avg_degree - 1.0) * lines as f64) as u64;
        if extra > 0 {
            self.stats.shared_conflict_groups += lines;
            self.stats.shared_conflict_cycles += extra;
        }
    }

    /// Charges `n` scalar-op equivalents of compute.
    pub fn bulk_ops(&mut self, n: u64) {
        self.stats.compute_ops += n;
    }

    /// Charges `n` atomic operations.
    pub fn bulk_atomics(&mut self, n: u64) {
        self.stats.atomic_ops += n;
    }

    /// Reads a shared array back on the host side (no traffic) — used by
    /// kernels at block end when moving staged results without modeling
    /// (the tracked path is preferred).
    pub fn shared_snapshot<T: DeviceCopy>(&self, h: SharedHandle<T>) -> Vec<T> {
        self.shared[h.id]
            .data
            .downcast_ref::<Vec<T>>()
            .expect("shared handle type mismatch")
            .clone()
    }

    pub(crate) fn take_stats(&mut self) -> KernelStats {
        std::mem::take(&mut self.stats)
    }
}

/// Per-thread view inside a [`BlockCtx::step`] closure.
///
/// All memory methods log tracked events; the replay after the step
/// converts them into traffic statistics.
pub struct Lane<'a> {
    tid: usize,
    block_idx: usize,
    block_dim: usize,
    grid_dim: usize,
    step: usize,
    shared: &'a mut Vec<SharedArray>,
    events: &'a mut Vec<Ev>,
    ops_acc: &'a mut u64,
    san: Option<&'a Rc<RefCell<LaunchSanitizer>>>,
}

impl<'a> Lane<'a> {
    /// Thread index within the block.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Global thread index across the grid.
    pub fn gtid(&self) -> usize {
        self.block_idx * self.block_dim + self.tid
    }

    /// Lane index within the warp.
    pub fn lane_in_warp(&self, warp_size: usize) -> usize {
        self.tid % warp_size
    }

    /// Block index (same as [`BlockCtx::block_idx`]).
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Total threads in the grid.
    pub fn grid_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }

    /// Handles an out-of-bounds shared access: a memcheck finding when a
    /// sanitizer is attached (the access is skipped), a structured panic
    /// otherwise. Always on — release builds no longer skip the check.
    ///
    /// Returns `true` when the caller must skip the access.
    fn shared_oob(&self, base_word: u32, len: usize, idx: usize, write: bool) -> bool {
        if let Some(san) = self.san {
            let mut s = san.borrow_mut();
            if s.memcheck_enabled() {
                s.record_shared_oob(self.tid, base_word, len, idx, write);
                return true;
            }
        }
        panic!(
            "memcheck: shared {} out of bounds: index {idx} >= len {len} \
             (block {}, step {}, lane {})",
            if write { "write" } else { "read" },
            self.block_idx,
            self.step,
            self.tid
        );
    }

    /// Global-memory analog of [`Lane::shared_oob`].
    fn global_oob<T: DeviceCopy>(&self, buf: &GpuBuffer<T>, idx: usize, write: bool) -> bool {
        if let Some(san) = self.san {
            let mut s = san.borrow_mut();
            if s.memcheck_enabled() {
                s.record_global_oob(
                    self.tid,
                    buf.inner.base_addr,
                    buf.len(),
                    idx,
                    write,
                    buf.describe(),
                );
                return true;
            }
        }
        panic!(
            "memcheck: global {} out of bounds: index {idx} >= len {} on {} \
             (block {}, step {}, lane {})",
            if write { "write" } else { "read" },
            buf.len(),
            buf.describe(),
            self.block_idx,
            self.step,
            self.tid
        );
    }

    /// Tracked global read.
    pub fn gread<T: DeviceCopy>(&mut self, buf: &GpuBuffer<T>, idx: usize) -> T {
        let bytes = std::mem::size_of::<T>() as u32;
        if idx >= buf.len() {
            self.global_oob(buf, idx, false);
            return T::default();
        }
        let addr = buf.inner.base_addr + (idx as u64) * bytes as u64;
        if let Some(san) = self.san {
            san.borrow_mut().global_access(
                self.tid,
                addr,
                bytes,
                false,
                self.events.len() as u32,
                &|| buf.describe(),
            );
        }
        self.events.push(Ev::Global {
            addr,
            bytes,
            write: false,
        });
        buf.inner.data.borrow()[idx]
    }

    /// Tracked global write.
    pub fn gwrite<T: DeviceCopy>(&mut self, buf: &GpuBuffer<T>, idx: usize, v: T) {
        let bytes = std::mem::size_of::<T>() as u32;
        if idx >= buf.len() {
            self.global_oob(buf, idx, true);
            return;
        }
        let addr = buf.inner.base_addr + (idx as u64) * bytes as u64;
        if let Some(san) = self.san {
            san.borrow_mut().global_access(
                self.tid,
                addr,
                bytes,
                true,
                self.events.len() as u32,
                &|| buf.describe(),
            );
        }
        self.events.push(Ev::Global {
            addr,
            bytes,
            write: true,
        });
        buf.inner.data.borrow_mut()[idx] = v;
        buf.inner.bump_version();
    }

    /// Tracked shared read.
    pub fn sread<T: DeviceCopy>(&mut self, h: SharedHandle<T>, idx: usize) -> T {
        let wpe = BlockCtx::words_per_elem::<T>() as u32;
        if idx >= h.len {
            self.shared_oob(h.base_word, h.len, idx, false);
            return T::default();
        }
        let word = h.base_word + idx as u32 * wpe;
        if let Some(san) = self.san {
            san.borrow_mut().shared_access(
                self.tid,
                word,
                wpe,
                false,
                self.events.len() as u32,
                true,
            );
        }
        self.events.push(Ev::Shared {
            word,
            words: wpe,
            write: false,
        });
        self.shared[h.id]
            .data
            .downcast_ref::<Vec<T>>()
            .expect("type")[idx]
    }

    /// Tracked shared write.
    pub fn swrite<T: DeviceCopy>(&mut self, h: SharedHandle<T>, idx: usize, v: T) {
        let wpe = BlockCtx::words_per_elem::<T>() as u32;
        if idx >= h.len {
            self.shared_oob(h.base_word, h.len, idx, true);
            return;
        }
        let word = h.base_word + idx as u32 * wpe;
        if let Some(san) = self.san {
            san.borrow_mut().shared_access(
                self.tid,
                word,
                wpe,
                true,
                self.events.len() as u32,
                true,
            );
        }
        self.events.push(Ev::Shared {
            word,
            words: wpe,
            write: true,
        });
        self.shared[h.id]
            .data
            .downcast_mut::<Vec<T>>()
            .expect("type")[idx] = v;
    }

    /// Untracked shared read — for accesses whose traffic the kernel
    /// accounts in bulk (e.g. the per-thread heap, where warp-divergence
    /// costing is done analytically). Bounds-checked and visible to the
    /// sanitizer's racecheck/initcheck (but not the perf lints, which
    /// model only tracked traffic).
    pub fn sread_untracked<T: DeviceCopy>(&self, h: SharedHandle<T>, idx: usize) -> T {
        if idx >= h.len {
            self.shared_oob(h.base_word, h.len, idx, false);
            return T::default();
        }
        if let Some(san) = self.san {
            let wpe = BlockCtx::words_per_elem::<T>() as u32;
            san.borrow_mut().shared_access(
                self.tid,
                h.base_word + idx as u32 * wpe,
                wpe,
                false,
                0,
                false,
            );
        }
        self.shared[h.id]
            .data
            .downcast_ref::<Vec<T>>()
            .expect("type")[idx]
    }

    /// Untracked shared write (see [`Lane::sread_untracked`]).
    pub fn swrite_untracked<T: DeviceCopy>(&mut self, h: SharedHandle<T>, idx: usize, v: T) {
        if idx >= h.len {
            self.shared_oob(h.base_word, h.len, idx, true);
            return;
        }
        if let Some(san) = self.san {
            let wpe = BlockCtx::words_per_elem::<T>() as u32;
            san.borrow_mut().shared_access(
                self.tid,
                h.base_word + idx as u32 * wpe,
                wpe,
                true,
                0,
                false,
            );
        }
        self.shared[h.id]
            .data
            .downcast_mut::<Vec<T>>()
            .expect("type")[idx] = v;
    }

    /// Charges `n` scalar-op equivalents to the step.
    pub fn ops(&mut self, n: u64) {
        *self.ops_acc += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block_dim: usize) -> BlockCtx {
        BlockCtx::new(DeviceSpec::titan_x_maxwell(), 0, 1, block_dim)
    }

    #[test]
    fn shared_alloc_and_rw() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(64);
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t, t as f32);
        });
        b.step(|l| {
            let t = l.tid();
            let v = l.sread(h, t);
            assert_eq!(v, t as f32);
        });
        let s = b.take_stats();
        assert_eq!(s.shared_accesses, 64);
        assert_eq!(
            s.shared_conflict_groups, 0,
            "sequential words are conflict-free"
        );
        // two warp groups (1 write + 1 read), each 128 B effective
        assert_eq!(s.shared_eff_bytes, 2 * 128);
    }

    #[test]
    fn bank_conflicts_detected_for_stride_2() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(64);
        // stride-2 word access: words 0,2,4,...,62 → banks 0,2,...,30 each
        // hit twice → degree 2
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t * 2, 0.0);
        });
        let s = b.take_stats();
        assert_eq!(s.shared_conflict_groups, 1);
        assert_eq!(s.shared_conflict_cycles, 1);
        assert_eq!(s.shared_eff_bytes, 2 * 128);
    }

    #[test]
    fn broadcast_is_free() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(64);
        b.step(|l| {
            let _ = l.sread(h, 5); // every lane reads the same word
        });
        let s = b.take_stats();
        assert_eq!(s.shared_conflict_groups, 0);
        assert_eq!(s.shared_eff_bytes, 128);
    }

    #[test]
    fn stride_32_is_worst_case() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(32 * 32);
        // all lanes hit bank 0 → degree 32
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t * 32, 1.0);
        });
        let s = b.take_stats();
        assert_eq!(s.shared_conflict_cycles, 31);
        assert_eq!(s.shared_eff_bytes, 32 * 128);
    }

    #[test]
    fn wide_elements_pay_two_lines() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f64>(32);
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t, t as f64);
        });
        let s = b.take_stats();
        // 64 words over 32 banks → degree 2 even though "contiguous"
        assert_eq!(s.shared_eff_bytes, 2 * 128);
    }

    #[test]
    fn padded_stride_breaks_conflicts() {
        // the PadMap idiom: word index i + i/32 removes stride-32 conflicts
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(32 * 33 + 32);
        b.step(|l| {
            let t = l.tid();
            let logical = t * 32;
            let physical = logical + logical / 32;
            l.swrite(h, physical, 1.0);
        });
        let s = b.take_stats();
        assert_eq!(
            s.shared_conflict_cycles, 0,
            "padding should eliminate conflicts"
        );
    }

    #[test]
    fn multiple_events_per_thread_align_by_slot() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(128);
        // slot 0: conflict-free; slot 1: full 32-way conflict on bank 0…
        // except only 4 threads issue the second access — degree 4
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t, 0.0);
            if t < 4 {
                l.swrite(h, t * 32, 0.0);
            }
        });
        let s = b.take_stats();
        assert_eq!(s.shared_conflict_cycles, 3); // degree 4 in slot 1
    }

    #[test]
    fn global_coalesced_vs_strided() {
        let mut b = ctx(32);
        // need a device for buffers — use a standalone device
        let dev = crate::Device::new(DeviceSpec::titan_x_maxwell());
        let buf = dev.alloc::<f32>(4096);
        b.step(|l| {
            let t = l.tid();
            let _ = l.gread(&buf, t); // coalesced: 32 lanes × 4 B = 4 sectors
        });
        let coalesced = b.take_stats();
        assert_eq!(coalesced.global_read_bytes, 4 * 32);

        let mut b2 = ctx(32);
        b2.step(|l| {
            let t = l.tid();
            let _ = l.gread(&buf, t * 32); // stride 128 B: 32 distinct sectors
        });
        let strided = b2.take_stats();
        assert_eq!(strided.global_read_bytes, 32 * 32);
    }

    #[test]
    fn global_reads_and_writes_tracked_separately() {
        let dev = crate::Device::new(DeviceSpec::titan_x_maxwell());
        let a = dev.alloc::<f32>(64);
        let o = dev.alloc::<f32>(64);
        let mut b = ctx(32);
        b.step(|l| {
            let t = l.tid();
            let v = l.gread(&a, t);
            l.gwrite(&o, t, v + 1.0);
        });
        let s = b.take_stats();
        assert_eq!(s.global_read_bytes, 128);
        assert_eq!(s.global_write_bytes, 128);
        assert_eq!(o.get(5), 1.0);
    }

    #[test]
    fn ops_accumulate() {
        let mut b = ctx(64);
        b.step(|l| l.ops(3));
        let s = b.take_stats();
        assert_eq!(s.compute_ops, 3 * 64);
        assert_eq!(s.steps, 1);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_overflow_panics() {
        let mut b = ctx(32);
        let _ = b.alloc_shared::<f32>(48 * 1024 / 4 + 1);
    }

    #[test]
    fn bulk_methods_feed_counters() {
        let mut b = ctx(32);
        b.bulk_global_read(1024);
        b.bulk_global_write(512);
        b.bulk_shared(256);
        b.bulk_ops(10);
        b.bulk_atomics(7);
        let s = b.take_stats();
        assert_eq!(s.global_bytes(), 1536);
        assert_eq!(s.shared_eff_bytes, 256);
        assert_eq!(s.compute_ops, 10);
        assert_eq!(s.atomic_ops, 7);
    }

    #[test]
    fn bulk_shared_with_conflicts_scales_traffic() {
        let mut b = ctx(32);
        b.bulk_shared_with_conflicts(1280, 2.0);
        let s = b.take_stats();
        assert_eq!(s.shared_eff_bytes, 2560);
        assert_eq!(s.shared_conflict_cycles, 10);
    }

    #[test]
    fn untracked_accessors_move_data_without_traffic() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<u32>(64);
        b.step(|l| {
            let t = l.tid();
            l.swrite_untracked(h, t, t as u32 * 3);
            assert_eq!(l.sread_untracked(h, t), t as u32 * 3);
        });
        let s = b.take_stats();
        assert_eq!(s.shared_accesses, 0, "untracked paths must not count");
        assert_eq!(s.shared_eff_bytes, 0);
    }

    #[test]
    fn shared_snapshot_reads_back_block_state() {
        let mut b = ctx(32);
        let h = b.alloc_shared::<f32>(32);
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t, t as f32);
        });
        let snap = b.shared_snapshot(h);
        assert_eq!(snap.len(), 32);
        assert_eq!(snap[7], 7.0);
    }

    #[test]
    fn lane_indexing_helpers() {
        let mut b = BlockCtx::new(DeviceSpec::titan_x_maxwell(), 3, 8, 64);
        b.step(|l| {
            assert_eq!(l.block_idx(), 3);
            assert_eq!(l.gtid(), 3 * 64 + l.tid());
            assert_eq!(l.grid_threads(), 8 * 64);
            assert_eq!(l.lane_in_warp(32), l.tid() % 32);
        });
    }

    #[test]
    fn partial_warp_handled() {
        let mut b = ctx(40); // 1 full warp + 8 lanes
        let h = b.alloc_shared::<f32>(64);
        b.step(|l| {
            let t = l.tid();
            l.swrite(h, t, 0.0);
        });
        let s = b.take_stats();
        assert_eq!(s.shared_accesses, 40);
        assert_eq!(s.shared_eff_bytes, 2 * 128); // two warp groups
    }
}
