//! Device hardware parameters.

/// Hardware parameters of the simulated GPU.
///
/// The defaults model the Nvidia GTX Titan X (Maxwell) the paper evaluates
/// on; the bandwidth figures are the ones Section 7 of the paper measures
/// (251 GB/s global, 2.9 TB/s shared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Threads per warp.
    pub warp_size: usize,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Shared memory available to one block, bytes.
    pub shared_mem_per_block: usize,
    /// Shared memory per SM, bytes (limits concurrent blocks).
    pub shared_mem_per_sm: usize,
    /// Register file per SM, 32-bit registers.
    pub regs_per_sm: usize,
    /// Maximum registers one thread may use before spilling.
    pub max_regs_per_thread: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Number of shared memory banks.
    pub shared_banks: usize,
    /// Global memory bandwidth, bytes/second (B_G).
    pub global_bw: f64,
    /// Shared memory aggregate bandwidth, bytes/second (B_S).
    pub shared_bw: f64,
    /// Simple compute throughput, scalar ops/second.
    pub compute_ops_per_sec: f64,
    /// Cost of one atomic operation, expressed in scalar-op equivalents
    /// (atomics serialize on contention; this is the calibrated average for
    /// the histogram-style usage in bucket select).
    pub atomic_op_cost: f64,
    /// Kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// Occupancy (fraction of max warps) needed to saturate global
    /// memory bandwidth; below it, achieved bandwidth degrades linearly.
    pub bw_saturation_occupancy: f64,
    /// Device (global) memory capacity in bytes; allocations beyond it
    /// fail, which is what forces the chunked out-of-core path.
    pub global_mem_bytes: usize,
    /// Host↔device interconnect bandwidth, bytes/second (PCI-E 3.0 ×16
    /// effective ≈ 12 GB/s on the paper's testbed generation).
    pub pcie_bw: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: GTX Titan X (Maxwell, GM200).
    pub fn titan_x_maxwell() -> Self {
        Self {
            warp_size: 32,
            num_sms: 24,
            max_threads_per_block: 1024,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            regs_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_banks: 32,
            global_bw: 251e9,
            shared_bw: 2.9e12,
            compute_ops_per_sec: 3.1e12,
            atomic_op_cost: 250.0,
            launch_overhead: 5e-6,
            bw_saturation_occupancy: 0.25,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            pcie_bw: 12e9,
        }
    }

    /// Titan X (Pascal): the next generation up — higher bandwidth,
    /// same shared-memory organization. Useful for the cost model's
    /// cross-hardware prediction claims.
    pub fn titan_x_pascal() -> Self {
        Self {
            num_sms: 28,
            global_bw: 480e9,
            shared_bw: 5.3e12,
            compute_ops_per_sec: 6.0e12,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            ..Self::titan_x_maxwell()
        }
    }

    /// Tesla V100 (Volta): HBM2 bandwidth, larger shared memory per SM.
    pub fn tesla_v100() -> Self {
        Self {
            num_sms: 80,
            shared_mem_per_sm: 128 * 1024,
            shared_mem_per_block: 96 * 1024,
            global_bw: 900e9,
            shared_bw: 13.8e12,
            compute_ops_per_sec: 14e12,
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            pcie_bw: 14e9,
            ..Self::titan_x_maxwell()
        }
    }

    /// A smaller laptop-class part, useful for tests that exercise
    /// occupancy cliffs at modest sizes.
    pub fn small_mobile() -> Self {
        Self {
            num_sms: 5,
            global_bw: 80e9,
            shared_bw: 0.9e12,
            compute_ops_per_sec: 0.8e12,
            global_mem_bytes: 4 * 1024 * 1024 * 1024,
            ..Self::titan_x_maxwell()
        }
    }

    /// Time to move `bytes` across the host↔device interconnect.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / self.pcie_bw
    }

    /// Bytes of the theoretical minimum scan: reading `bytes` once at full
    /// global bandwidth — the "Memory Bandwidth" floor in Figure 11.
    pub fn scan_floor_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / self.global_bw
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::titan_x_maxwell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_paper_parameters() {
        let s = DeviceSpec::titan_x_maxwell();
        assert_eq!(s.warp_size, 32);
        assert_eq!(s.shared_mem_per_block, 48 * 1024);
        assert!((s.global_bw - 251e9).abs() < 1e6);
        assert!((s.shared_bw - 2.9e12).abs() < 1e6);
    }

    #[test]
    fn presets_are_ordered_by_generation() {
        let maxwell = DeviceSpec::titan_x_maxwell();
        let pascal = DeviceSpec::titan_x_pascal();
        let v100 = DeviceSpec::tesla_v100();
        assert!(maxwell.global_bw < pascal.global_bw);
        assert!(pascal.global_bw < v100.global_bw);
        assert!(maxwell.shared_bw < v100.shared_bw);
        assert!(v100.shared_mem_per_block > maxwell.shared_mem_per_block);
    }

    #[test]
    fn transfer_time_is_pcie_bound() {
        let s = DeviceSpec::titan_x_maxwell();
        // 12 GB at 12 GB/s = 1 s
        assert!((s.transfer_seconds(12_000_000_000) - 1.0).abs() < 1e-9);
        assert!(s.transfer_seconds(1 << 20) < s.scan_floor_seconds(1 << 20) * 100.0);
    }

    #[test]
    fn scan_floor_is_linear() {
        let s = DeviceSpec::titan_x_maxwell();
        let t1 = s.scan_floor_seconds(1 << 20);
        let t2 = s.scan_floor_seconds(1 << 21);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 2^31 bytes at 251 GB/s ≈ 8.56 ms (the paper's SortReducer estimate)
        let t = s.scan_floor_seconds(1 << 31);
        assert!((t - 8.56e-3).abs() < 0.1e-3, "t={t}");
    }
}
