//! Device-resident buffers.

use std::cell::RefCell;
use std::rc::Rc;

use crate::device::DeviceInner;

/// Types that may live in device memory.
///
/// Plain bit-copyable records; `Default` supplies the value used by
/// zero-initialized allocations.
pub trait DeviceCopy: Copy + Default + 'static {}
impl<T: Copy + Default + 'static> DeviceCopy for T {}

pub(crate) struct BufferInner<T> {
    pub(crate) data: RefCell<Vec<T>>,
    /// Simulated device address of element 0 (for coalescing analysis).
    pub(crate) base_addr: u64,
    bytes: usize,
    dev: Rc<DeviceInner>,
}

impl<T> Drop for BufferInner<T> {
    fn drop(&mut self) {
        self.dev.release_bytes(self.bytes);
    }
}

/// A buffer in simulated global memory.
///
/// Cloning is cheap (reference-counted); the device tracks allocated bytes
/// and the high-water mark so experiments can report the paper's memory
/// usage claims (bitonic top-k: n/8 extra vs. n for sort/select).
pub struct GpuBuffer<T: DeviceCopy> {
    pub(crate) inner: Rc<BufferInner<T>>,
}

impl<T: DeviceCopy> Clone for GpuBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: DeviceCopy> GpuBuffer<T> {
    pub(crate) fn new(dev: Rc<DeviceInner>, data: Vec<T>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        let base_addr = dev.claim_address_range(bytes);
        dev.acquire_bytes(bytes);
        Self {
            inner: Rc::new(BufferInner {
                data: RefCell::new(data),
                base_addr,
                bytes,
                dev,
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.borrow().len()
    }

    /// True when the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies device contents back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.data.borrow().clone()
    }

    /// Copies a range back to the host.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Vec<T> {
        self.inner.data.borrow()[range].to_vec()
    }

    /// Host-side element read (no traffic accounting; use [`crate::Lane`]
    /// inside kernels).
    pub fn get(&self, idx: usize) -> T {
        self.inner.data.borrow()[idx]
    }

    /// Host-side element write (no traffic accounting).
    pub fn set(&self, idx: usize, v: T) {
        self.inner.data.borrow_mut()[idx] = v;
    }

    /// Overwrites device contents from a host slice (like `cudaMemcpy` in;
    /// PCI-E transfer is outside the paper's scope and is not timed).
    pub fn upload(&self, host: &[T]) {
        let mut d = self.inner.data.borrow_mut();
        assert!(host.len() <= d.len(), "upload larger than buffer");
        d[..host.len()].copy_from_slice(host);
    }

    /// Simulated device address of element 0.
    pub fn base_addr(&self) -> u64 {
        self.inner.base_addr
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

impl<T: DeviceCopy + std::fmt::Debug> std::fmt::Debug for GpuBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GpuBuffer<{}>(len={}, base=0x{:x})",
            std::any::type_name::<T>(),
            self.len(),
            self.inner.base_addr
        )
    }
}
