//! Device-resident buffers.

use std::cell::RefCell;
use std::rc::Rc;

use crate::device::DeviceInner;
use crate::fault::EccTarget;

/// Types that may live in device memory.
///
/// Plain bit-copyable records; `Default` supplies the value used by
/// zero-initialized allocations.
pub trait DeviceCopy: Copy + Default + 'static {}
impl<T: Copy + Default + 'static> DeviceCopy for T {}

pub(crate) struct BufferInner<T> {
    pub(crate) data: RefCell<Vec<T>>,
    /// Simulated device address of element 0 (for coalescing analysis).
    pub(crate) base_addr: u64,
    bytes: usize,
    dev: Rc<DeviceInner>,
}

impl<T> Drop for BufferInner<T> {
    fn drop(&mut self) {
        self.dev.release_bytes(self.bytes);
    }
}

/// A buffer in simulated global memory.
///
/// Cloning is cheap (reference-counted); the device tracks allocated bytes
/// and the high-water mark so experiments can report the paper's memory
/// usage claims (bitonic top-k: n/8 extra vs. n for sort/select).
pub struct GpuBuffer<T: DeviceCopy> {
    pub(crate) inner: Rc<BufferInner<T>>,
}

impl<T: DeviceCopy> Clone for GpuBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: DeviceCopy> GpuBuffer<T> {
    pub(crate) fn new(dev: Rc<DeviceInner>, data: Vec<T>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        let base_addr = dev.claim_address_range(bytes);
        dev.acquire_bytes(bytes);
        Self {
            inner: Rc::new(BufferInner {
                data: RefCell::new(data),
                base_addr,
                bytes,
                dev,
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.borrow().len()
    }

    /// True when the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies device contents back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.data.borrow().clone()
    }

    /// Copies a range back to the host.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Vec<T> {
        self.inner.data.borrow()[range].to_vec()
    }

    /// Host-side element read (no traffic accounting; use [`crate::Lane`]
    /// inside kernels).
    pub fn get(&self, idx: usize) -> T {
        self.inner.data.borrow()[idx]
    }

    /// Host-side element write (no traffic accounting).
    pub fn set(&self, idx: usize, v: T) {
        self.inner.data.borrow_mut()[idx] = v;
    }

    /// Overwrites device contents from a host slice (like `cudaMemcpy` in;
    /// PCI-E transfer is outside the paper's scope and is not timed).
    pub fn upload(&self, host: &[T]) {
        let mut d = self.inner.data.borrow_mut();
        assert!(host.len() <= d.len(), "upload larger than buffer");
        d[..host.len()].copy_from_slice(host);
    }

    /// Simulated device address of element 0.
    pub fn base_addr(&self) -> u64 {
        self.inner.base_addr
    }

    /// Opts this buffer in to ECC-corruption injection under the
    /// device's fault plan (see [`crate::fault`]). When a corruption
    /// fault fires, one element of one live tagged buffer is overwritten
    /// with `T::default()` and a [`crate::FaultEvent`] carrying `label`
    /// is recorded — callers watch the event log for their labels and
    /// re-derive anything that was hit. Untagged buffers are never
    /// corrupted. The tag lives as long as the buffer; dropping every
    /// clone retires it.
    pub fn tag_ecc(&self, label: impl Into<String>) {
        let alive = Rc::downgrade(&self.inner);
        let corrupt = Rc::downgrade(&self.inner);
        self.inner.dev.register_ecc_target(EccTarget {
            label: label.into(),
            alive: Box::new(move || alive.upgrade().is_some()),
            corrupt: Box::new(move |word| {
                let inner = corrupt.upgrade()?;
                let mut data = inner.data.borrow_mut();
                if data.is_empty() {
                    return None;
                }
                let idx = (word as usize) % data.len();
                data[idx] = T::default();
                Some(idx)
            }),
        });
    }

    /// One-line allocation description used by sanitizer diagnostics to
    /// attribute global-memory findings (element type, length, address).
    pub fn describe(&self) -> String {
        format!(
            "GpuBuffer<{}> len={} base=0x{:x}",
            std::any::type_name::<T>(),
            self.len(),
            self.inner.base_addr
        )
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Reinterprets this buffer's device storage as the wrapper type `U`
    /// **in place in the simulated address space**: no new device
    /// allocation, no accounted traffic, same simulated address range.
    /// The storage moves into the returned view; it moves back (with any
    /// writes the view received) when the [`MappedBuffer`] is dropped.
    /// Until then this buffer reads as empty.
    ///
    /// This is how smallest-k reuses the largest-k kernels: a buffer of
    /// `T` is viewed as the order-reversing wrapper without a device
    /// round-trip. (The host-side `Vec` is converted element-wise via
    /// [`TransparentWrapper::wrap`] — invisible to the device model,
    /// which sees the same addresses and zero extra bytes.)
    pub fn map_view<U: TransparentWrapper<T>>(&self) -> MappedBuffer<T, U> {
        let data = std::mem::take(&mut *self.inner.data.borrow_mut());
        let view = GpuBuffer {
            inner: Rc::new(BufferInner {
                data: RefCell::new(data.into_iter().map(U::wrap).collect()),
                base_addr: self.inner.base_addr,
                // the storage is the source buffer's; the view itself
                // owns no device bytes
                bytes: 0,
                dev: Rc::clone(&self.inner.dev),
            }),
        };
        MappedBuffer {
            view,
            source: self.clone(),
        }
    }
}

/// Contract for in-place buffer reinterpretation in the simulated
/// address space.
///
/// A type `U` implementing `TransparentWrapper<T>` is a value-identical
/// wrapper around `T` (same device footprint): `wrap` and `peel` are
/// exact inverses, so a device buffer of `T` can be viewed as a buffer
/// of `U` — and restored — without changing its simulated address range
/// or allocation accounting (see [`GpuBuffer::map_view`]).
///
/// The canonical implementor is `datagen::item::Rev<T>`, the
/// order-reversing wrapper that turns largest-k kernels into smallest-k.
pub trait TransparentWrapper<T: DeviceCopy>: DeviceCopy {
    /// Wraps one underlying element.
    fn wrap(inner: T) -> Self;
    /// Recovers the underlying element (exact inverse of `wrap`).
    fn peel(self) -> T;
}

/// An in-place reinterpretation of a [`GpuBuffer`]'s storage, created by
/// [`GpuBuffer::map_view`]. Dropping it returns the storage to the
/// source buffer.
pub struct MappedBuffer<T: DeviceCopy, U: TransparentWrapper<T>> {
    view: GpuBuffer<U>,
    source: GpuBuffer<T>,
}

impl<T: DeviceCopy, U: TransparentWrapper<T>> MappedBuffer<T, U> {
    /// The buffer viewed as elements of `U`. Kernels launched on the view
    /// read and write the source buffer's storage.
    pub fn view(&self) -> &GpuBuffer<U> {
        &self.view
    }
}

impl<T: DeviceCopy, U: TransparentWrapper<T>> Drop for MappedBuffer<T, U> {
    fn drop(&mut self) {
        let data = std::mem::take(&mut *self.view.inner.data.borrow_mut());
        *self.source.inner.data.borrow_mut() = data.into_iter().map(U::peel).collect();
    }
}

impl<T: DeviceCopy + std::fmt::Debug> std::fmt::Debug for GpuBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GpuBuffer<{}>(len={}, base=0x{:x})",
            std::any::type_name::<T>(),
            self.len(),
            self.inner.base_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[derive(Debug, Clone, Copy, PartialEq, Default)]
    struct Wrapped(u32);

    impl super::TransparentWrapper<u32> for Wrapped {
        fn wrap(inner: u32) -> Self {
            Wrapped(inner)
        }
        fn peel(self) -> u32 {
            self.0
        }
    }

    #[test]
    fn map_view_sees_wrapped_elements() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[10u32, 20, 30]);
        let base = buf.base_addr();
        {
            let mapped = buf.map_view::<Wrapped>();
            assert_eq!(mapped.view().base_addr(), base);
            assert_eq!(
                mapped.view().to_vec(),
                vec![Wrapped(10), Wrapped(20), Wrapped(30)]
            );
        }
        assert_eq!(buf.to_vec(), vec![10u32, 20, 30]);
    }

    #[test]
    fn map_view_is_in_place_and_restores() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[1u32, 2, 3, 4]);
        let bytes_before = dev.memory_allocated();
        let base = buf.base_addr();
        {
            let mapped = buf.map_view::<Wrapped>();
            // no new device allocation, same address range
            assert_eq!(dev.memory_allocated(), bytes_before);
            assert_eq!(mapped.view().base_addr(), base);
            assert_eq!(mapped.view().get(2), Wrapped(3));
            mapped.view().set(0, Wrapped(99));
            // storage has moved into the view
            assert!(buf.is_empty());
        }
        // drop restored the storage, including the view's write
        assert_eq!(buf.to_vec(), vec![99u32, 2, 3, 4]);
        assert_eq!(dev.memory_allocated(), bytes_before);
    }
}
