//! Device-resident buffers.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::device::DeviceInner;
use crate::fault::EccTarget;

/// Types that may live in device memory.
///
/// Plain bit-copyable records; `Default` supplies the value used by
/// zero-initialized allocations.
pub trait DeviceCopy: Copy + Default + 'static {}
impl<T: Copy + Default + 'static> DeviceCopy for T {}

pub(crate) struct BufferInner<T> {
    pub(crate) data: RefCell<Vec<T>>,
    /// Simulated device address of element 0 (for coalescing analysis).
    pub(crate) base_addr: u64,
    bytes: usize,
    dev: Rc<DeviceInner>,
    /// Bumped on every mutation of `data`; see
    /// [`GpuBuffer::contents_version`].
    pub(crate) version: Cell<u64>,
    /// Derived-structure cache slot: `(version at attach, value)`. The
    /// value is only handed back while the version still matches.
    aux: RefCell<Option<(u64, Rc<dyn Any>)>>,
}

impl<T> BufferInner<T> {
    /// Records a content mutation (and thereby invalidates any cached
    /// aux structure attached at an older version).
    pub(crate) fn bump_version(&self) {
        self.version.set(self.version.get() + 1);
    }
}

impl<T> Drop for BufferInner<T> {
    fn drop(&mut self) {
        self.dev.release_bytes(self.bytes);
    }
}

/// A buffer in simulated global memory.
///
/// Cloning is cheap (reference-counted); the device tracks allocated bytes
/// and the high-water mark so experiments can report the paper's memory
/// usage claims (bitonic top-k: n/8 extra vs. n for sort/select).
pub struct GpuBuffer<T: DeviceCopy> {
    pub(crate) inner: Rc<BufferInner<T>>,
}

impl<T: DeviceCopy> Clone for GpuBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: DeviceCopy> GpuBuffer<T> {
    pub(crate) fn new(dev: Rc<DeviceInner>, data: Vec<T>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        let base_addr = dev.claim_address_range(bytes);
        dev.acquire_bytes(bytes);
        Self {
            inner: Rc::new(BufferInner {
                data: RefCell::new(data),
                base_addr,
                bytes,
                dev,
                version: Cell::new(0),
                aux: RefCell::new(None),
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.borrow().len()
    }

    /// True when the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies device contents back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.data.borrow().clone()
    }

    /// Copies a range back to the host.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Vec<T> {
        self.inner.data.borrow()[range].to_vec()
    }

    /// Host-side element read (no traffic accounting; use [`crate::Lane`]
    /// inside kernels).
    pub fn get(&self, idx: usize) -> T {
        self.inner.data.borrow()[idx]
    }

    /// Host-side element write (no traffic accounting).
    pub fn set(&self, idx: usize, v: T) {
        self.inner.data.borrow_mut()[idx] = v;
        self.inner.bump_version();
    }

    /// Overwrites device contents from a host slice (like `cudaMemcpy` in;
    /// PCI-E transfer is outside the paper's scope and is not timed).
    pub fn upload(&self, host: &[T]) {
        let mut d = self.inner.data.borrow_mut();
        assert!(host.len() <= d.len(), "upload larger than buffer");
        d[..host.len()].copy_from_slice(host);
        drop(d);
        self.inner.bump_version();
    }

    /// Monotone counter of content mutations: any path that can change
    /// this buffer's elements — host `set`/`upload`, a kernel lane's
    /// global write, an ECC corruption, a mapped view returning its
    /// storage — bumps it. Two reads observing the same version are
    /// guaranteed to have seen identical contents.
    pub fn contents_version(&self) -> u64 {
        self.inner.version.get()
    }

    /// Attaches a derived structure (an index, a summary, …) to this
    /// buffer, valid for the current [`Self::contents_version`]. Any
    /// later mutation invalidates it: [`Self::aux`] returns `None` once
    /// the version has moved on. One slot per buffer — attaching
    /// replaces whatever was cached before.
    pub fn attach_aux<A: 'static>(&self, value: A) {
        *self.inner.aux.borrow_mut() =
            Some((self.inner.version.get(), Rc::new(value) as Rc<dyn Any>));
    }

    /// The cached derived structure of type `A`, if one was attached at
    /// the current contents version (stale or type-mismatched caches
    /// yield `None`).
    pub fn aux<A: 'static>(&self) -> Option<Rc<A>> {
        let slot = self.inner.aux.borrow();
        let (ver, value) = slot.as_ref()?;
        if *ver != self.inner.version.get() {
            return None;
        }
        value.clone().downcast::<A>().ok()
    }

    /// Simulated device address of element 0.
    pub fn base_addr(&self) -> u64 {
        self.inner.base_addr
    }

    /// Opts this buffer in to ECC-corruption injection under the
    /// device's fault plan (see [`crate::fault`]). When a corruption
    /// fault fires, one element of one live tagged buffer is overwritten
    /// with `T::default()` and a [`crate::FaultEvent`] carrying `label`
    /// is recorded — callers watch the event log for their labels and
    /// re-derive anything that was hit. Untagged buffers are never
    /// corrupted. The tag lives as long as the buffer; dropping every
    /// clone retires it.
    pub fn tag_ecc(&self, label: impl Into<String>) {
        let alive = Rc::downgrade(&self.inner);
        let corrupt = Rc::downgrade(&self.inner);
        self.inner.dev.register_ecc_target(EccTarget {
            label: label.into(),
            alive: Box::new(move || alive.upgrade().is_some()),
            corrupt: Box::new(move |word| {
                let inner = corrupt.upgrade()?;
                let mut data = inner.data.borrow_mut();
                if data.is_empty() {
                    return None;
                }
                let idx = (word as usize) % data.len();
                data[idx] = T::default();
                drop(data);
                inner.bump_version();
                Some(idx)
            }),
        });
    }

    /// One-line allocation description used by sanitizer diagnostics to
    /// attribute global-memory findings (element type, length, address).
    pub fn describe(&self) -> String {
        format!(
            "GpuBuffer<{}> len={} base=0x{:x}",
            std::any::type_name::<T>(),
            self.len(),
            self.inner.base_addr
        )
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Reinterprets this buffer's device storage as the wrapper type `U`
    /// **in place in the simulated address space**: no new device
    /// allocation, no accounted traffic, same simulated address range.
    /// The storage moves into the returned view; it moves back (with any
    /// writes the view received) when the [`MappedBuffer`] is dropped.
    /// Until then this buffer reads as empty.
    ///
    /// This is how smallest-k reuses the largest-k kernels: a buffer of
    /// `T` is viewed as the order-reversing wrapper without a device
    /// round-trip. (The host-side `Vec` is converted element-wise via
    /// [`TransparentWrapper::wrap`] — invisible to the device model,
    /// which sees the same addresses and zero extra bytes.)
    pub fn map_view<U: TransparentWrapper<T>>(&self) -> MappedBuffer<T, U> {
        let data = std::mem::take(&mut *self.inner.data.borrow_mut());
        self.inner.bump_version();
        let view = GpuBuffer {
            inner: Rc::new(BufferInner {
                data: RefCell::new(data.into_iter().map(U::wrap).collect()),
                base_addr: self.inner.base_addr,
                // the storage is the source buffer's; the view itself
                // owns no device bytes
                bytes: 0,
                dev: Rc::clone(&self.inner.dev),
                version: Cell::new(0),
                aux: RefCell::new(None),
            }),
        };
        MappedBuffer {
            view,
            source: self.clone(),
        }
    }
}

/// Contract for in-place buffer reinterpretation in the simulated
/// address space.
///
/// A type `U` implementing `TransparentWrapper<T>` is a value-identical
/// wrapper around `T` (same device footprint): `wrap` and `peel` are
/// exact inverses, so a device buffer of `T` can be viewed as a buffer
/// of `U` — and restored — without changing its simulated address range
/// or allocation accounting (see [`GpuBuffer::map_view`]).
///
/// The canonical implementor is `datagen::item::Rev<T>`, the
/// order-reversing wrapper that turns largest-k kernels into smallest-k.
pub trait TransparentWrapper<T: DeviceCopy>: DeviceCopy {
    /// Wraps one underlying element.
    fn wrap(inner: T) -> Self;
    /// Recovers the underlying element (exact inverse of `wrap`).
    fn peel(self) -> T;
}

/// An in-place reinterpretation of a [`GpuBuffer`]'s storage, created by
/// [`GpuBuffer::map_view`]. Dropping it returns the storage to the
/// source buffer.
pub struct MappedBuffer<T: DeviceCopy, U: TransparentWrapper<T>> {
    view: GpuBuffer<U>,
    source: GpuBuffer<T>,
}

impl<T: DeviceCopy, U: TransparentWrapper<T>> MappedBuffer<T, U> {
    /// The buffer viewed as elements of `U`. Kernels launched on the view
    /// read and write the source buffer's storage.
    pub fn view(&self) -> &GpuBuffer<U> {
        &self.view
    }
}

impl<T: DeviceCopy, U: TransparentWrapper<T>> Drop for MappedBuffer<T, U> {
    fn drop(&mut self) {
        let data = std::mem::take(&mut *self.view.inner.data.borrow_mut());
        *self.source.inner.data.borrow_mut() = data.into_iter().map(U::peel).collect();
        self.source.inner.bump_version();
    }
}

impl<T: DeviceCopy + std::fmt::Debug> std::fmt::Debug for GpuBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GpuBuffer<{}>(len={}, base=0x{:x})",
            std::any::type_name::<T>(),
            self.len(),
            self.inner.base_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[derive(Debug, Clone, Copy, PartialEq, Default)]
    struct Wrapped(u32);

    impl super::TransparentWrapper<u32> for Wrapped {
        fn wrap(inner: u32) -> Self {
            Wrapped(inner)
        }
        fn peel(self) -> u32 {
            self.0
        }
    }

    #[test]
    fn map_view_sees_wrapped_elements() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[10u32, 20, 30]);
        let base = buf.base_addr();
        {
            let mapped = buf.map_view::<Wrapped>();
            assert_eq!(mapped.view().base_addr(), base);
            assert_eq!(
                mapped.view().to_vec(),
                vec![Wrapped(10), Wrapped(20), Wrapped(30)]
            );
        }
        assert_eq!(buf.to_vec(), vec![10u32, 20, 30]);
    }

    #[test]
    fn map_view_is_in_place_and_restores() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[1u32, 2, 3, 4]);
        let bytes_before = dev.memory_allocated();
        let base = buf.base_addr();
        {
            let mapped = buf.map_view::<Wrapped>();
            // no new device allocation, same address range
            assert_eq!(dev.memory_allocated(), bytes_before);
            assert_eq!(mapped.view().base_addr(), base);
            assert_eq!(mapped.view().get(2), Wrapped(3));
            mapped.view().set(0, Wrapped(99));
            // storage has moved into the view
            assert!(buf.is_empty());
        }
        // drop restored the storage, including the view's write
        assert_eq!(buf.to_vec(), vec![99u32, 2, 3, 4]);
        assert_eq!(dev.memory_allocated(), bytes_before);
    }

    #[test]
    fn version_tracks_every_mutation_path() {
        let dev = Device::titan_x();
        let buf = dev.upload(&[1u32, 2, 3]);
        let v0 = buf.contents_version();
        buf.set(1, 9);
        assert!(buf.contents_version() > v0, "set must bump");
        let v1 = buf.contents_version();
        buf.upload(&[4, 5]);
        assert!(buf.contents_version() > v1, "upload must bump");
        let v2 = buf.contents_version();
        {
            let _mapped = buf.map_view::<Wrapped>();
            assert!(buf.contents_version() > v2, "map_view takes the storage");
        }
        assert!(
            buf.contents_version() > v2,
            "the view restoring storage must bump again"
        );
        // reads never bump
        let v3 = buf.contents_version();
        let _ = buf.to_vec();
        let _ = buf.get(0);
        let _ = buf.read_range(0..2);
        assert_eq!(buf.contents_version(), v3);
    }

    #[test]
    fn aux_cache_survives_reads_and_dies_on_writes() {
        #[derive(Debug, PartialEq)]
        struct Summary(u32);

        let dev = Device::titan_x();
        let buf = dev.upload(&[7u32, 8, 9]);
        assert!(buf.aux::<Summary>().is_none(), "nothing attached yet");
        buf.attach_aux(Summary(24));
        assert_eq!(*buf.aux::<Summary>().unwrap(), Summary(24));
        let _ = buf.to_vec(); // reads keep the cache valid
        assert!(buf.aux::<Summary>().is_some());
        // wrong type: miss without disturbing the slot
        assert!(buf.aux::<String>().is_none());
        assert!(buf.aux::<Summary>().is_some());
        buf.set(0, 0); // any write invalidates
        assert!(buf.aux::<Summary>().is_none(), "stale cache must not leak");
        // re-attach at the new version
        buf.attach_aux(Summary(1));
        assert_eq!(*buf.aux::<Summary>().unwrap(), Summary(1));
        buf.upload(&[1, 2, 3]);
        assert!(buf.aux::<Summary>().is_none());
    }

    #[test]
    fn kernel_global_writes_invalidate_aux() {
        use crate::device::Kernel;
        use crate::BlockCtx;

        struct Bump(crate::GpuBuffer<u32>);
        impl Kernel for Bump {
            fn name(&self) -> &'static str {
                "bump"
            }
            fn block_dim(&self) -> usize {
                1
            }
            fn grid_dim(&self) -> usize {
                1
            }
            fn run_block(&self, blk: &mut BlockCtx) {
                blk.step(|lane| {
                    let x = lane.gread(&self.0, 0);
                    lane.gwrite(&self.0, 0, x + 1);
                });
            }
        }

        let dev = Device::titan_x();
        let buf = dev.upload(&[5u32; 4]);
        buf.attach_aux(41u32);
        dev.launch(&Bump(buf.clone())).unwrap();
        assert_eq!(buf.get(0), 6);
        assert!(
            buf.aux::<u32>().is_none(),
            "a kernel's global write must invalidate the cache"
        );
    }
}
