#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A warp-synchronous SIMT GPU simulator.
//!
//! This crate is the hardware substrate for the top-k reproduction: it
//! executes GPU-style kernels *functionally* (real data, real results) on
//! the host while accounting for the machine quantities that determine GPU
//! performance — and deriving simulated time from them:
//!
//! * **global memory** traffic with per-warp coalescing into 32-byte
//!   sectors,
//! * **shared memory** traffic with 32 banks and exact per-step conflict
//!   degrees (same-address broadcast is free),
//! * **occupancy** (blocks per SM limited by shared memory, registers and
//!   thread count) and its effect on achievable global bandwidth,
//! * **compute** and **atomic** operation counts,
//! * **kernel launch overhead**.
//!
//! The timing model is the paper's own (Section 7):
//! `T = max(T_global, T_shared, T_compute) + overhead`, with
//! `T_global = bytes / (B_G · eff(occupancy))` and
//! `T_shared = conflict-weighted bytes / B_S`.
//!
//! # Writing kernels
//!
//! A kernel implements [`Kernel::run_block`]; the body is organized into
//! *steps* (the code between `__syncthreads()` barriers). Within
//! [`BlockCtx::step`] the closure runs once per thread; its tracked
//! accesses are recorded with (warp, intra-thread slot) coordinates and
//! replayed warp-lockstep, which is exact for the data-independent access
//! patterns of sorting networks. Per-thread state that survives across
//! steps lives in kernel-owned arrays indexed by [`Lane::tid`] — the
//! moral equivalent of registers.
//!
//! Streaming kernels whose patterns are trivially coalesced (radix
//! histograms, scatter passes) can skip per-access tracking and charge
//! aggregate traffic through the `bulk_*` methods, which feed the same
//! counters.

pub mod block;
pub mod buffer;
pub mod device;
pub mod fault;
pub mod lint;
pub mod occupancy;
pub mod sanitize;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod topology;
pub mod trace;

pub use block::{BlockCtx, Lane, SharedHandle};
pub use buffer::{DeviceCopy, GpuBuffer, MappedBuffer, TransparentWrapper};
pub use device::{
    Device, IngestRecord, Kernel, LaunchError, LaunchReport, LaunchWindow, OutOfMemory,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use lint::{
    AccessSpec, BufferDecl, BulkAccess, GlobalStream, LaunchGeometry, LintConfig, LintFinding,
    LintKind, LintReport, PhaseSpec, SharedEv, SharedStep, StaticPrediction,
};
pub use occupancy::Occupancy;
pub use sanitize::{Finding, FindingKind, SanitizeConfig, SanitizerReport, Severity};
pub use spec::DeviceSpec;
pub use stats::{KernelStats, SimTime};
pub use stream::{Event, ScheduledLaunch, Stream, StreamId, StreamSchedule};
pub use topology::{Cluster, ClusterSpec, Endpoint, LinkSpec, Transfer, TransferError};
pub use trace::{chrome_trace, chrome_trace_streams};
