//! Streams: concurrent kernel execution on a shared device timeline.
//!
//! Real GPUs let independent work share the machine: kernels issued on
//! different streams run concurrently as long as SMs and bandwidth are
//! available, and `cudaEvent`s impose cross-stream ordering. This module
//! adds the same model to the simulator.
//!
//! Launch execution stays unchanged (blocks still run functionally, one
//! launch at a time, and each launch keeps its solo [`LaunchReport`]).
//! What streams change is *scheduling*: [`schedule`] replays the launch
//! log onto a shared device timeline where launches on different streams
//! overlap, contending for two resources:
//!
//! * **SMs** — a launch occupying `g` blocks at `b` resident blocks/SM
//!   claims `g / (b · num_sms)` of the machine (capped at 1). Sixty-four
//!   one-block kernels on a 24-SM device overlap essentially for free —
//!   this is the concurrency the serving layer exploits.
//! * **Global bandwidth** — a launch that solo-sustains a fraction `f`
//!   of peak DRAM bandwidth claims `f` of it.
//!
//! When the sum of claims on either resource exceeds the machine, every
//! resident launch is slowed by the same factor (fair sharing), so two
//! full-device scans overlap into ~2× the time of one — no free lunch —
//! while small independent kernels genuinely overlap.

use std::rc::Rc;

use crate::device::{DeviceInner, LaunchReport};
use crate::sanitize::SanitizerReport;
use crate::spec::DeviceSpec;
use crate::stats::SimTime;

/// Identifies a stream. `StreamId(0)` is the default stream every launch
/// goes to unless scoped otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamId(pub usize);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// A stream handle created by [`crate::Device::create_stream`]. Cloning
/// yields another handle to the same stream.
#[derive(Clone)]
pub struct Stream {
    dev: Rc<DeviceInner>,
    id: StreamId,
}

impl Stream {
    pub(crate) fn new(dev: Rc<DeviceInner>, id: StreamId) -> Self {
        Stream { dev, id }
    }

    /// The stream's id (pass to [`crate::Device::stream_scope`]).
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Records an event capturing all work issued to this stream so far.
    pub fn record_event(&self) -> Event {
        Event {
            source_stream: self.id.0,
            upto_abs: self.dev.log_len(),
        }
    }

    /// Sanitizer reports for launches issued on this stream, in launch
    /// order. Empty unless the device sanitizer was enabled while the
    /// launches ran (see [`crate::Device::enable_sanitizer`]) — this is
    /// how serving-layer code audits the launches a particular query's
    /// stream produced.
    pub fn sanitizer_reports(&self) -> Vec<SanitizerReport> {
        self.dev.stream_san_reports(self.id.0)
    }

    /// Injected fault events attributed to this stream, in firing order
    /// (see [`crate::fault`]). Empty unless a fault plan was installed
    /// while the stream's work ran.
    pub fn fault_events(&self) -> Vec<crate::fault::FaultEvent> {
        self.dev.stream_fault_events(self.id.0)
    }

    /// Makes all *future* launches on this stream wait until the work
    /// captured by `event` has completed.
    pub fn wait_event(&self, event: &Event) {
        self.dev.waits.borrow_mut().push(WaitEdge {
            waiting_stream: self.id.0,
            from_abs: self.dev.log_len(),
            source_stream: event.source_stream,
            upto_abs: event.upto_abs,
        });
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream").field("id", &self.id).finish()
    }
}

/// A marker on a stream's timeline: all launches the stream had issued
/// when the event was recorded.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub(crate) source_stream: usize,
    pub(crate) upto_abs: usize,
}

/// A cross-stream ordering constraint: launches of `waiting_stream` at
/// log position ≥ `from_abs` must start after every launch of
/// `source_stream` at position < `upto_abs` has completed.
#[derive(Debug, Clone, Copy)]
pub struct WaitEdge {
    pub(crate) waiting_stream: usize,
    pub(crate) from_abs: usize,
    pub(crate) source_stream: usize,
    pub(crate) upto_abs: usize,
}

/// One launch placed on the shared device timeline.
#[derive(Debug, Clone)]
pub struct ScheduledLaunch {
    /// Absolute position in the device launch log.
    pub index: usize,
    /// Stream the launch ran on.
    pub stream: usize,
    /// Start time on the shared timeline.
    pub start: SimTime,
    /// Completion time on the shared timeline.
    pub end: SimTime,
    /// `(end - start) / solo_time` — 1.0 means no contention.
    pub stretch: f64,
}

/// The launch log replayed onto a shared device timeline.
#[derive(Debug, Clone)]
pub struct StreamSchedule {
    /// Per-launch placement, in log order.
    pub launches: Vec<ScheduledLaunch>,
    /// Completion time of the last launch.
    pub makespan: SimTime,
    /// What the same launches would take back-to-back on one stream.
    pub serial_time: SimTime,
}

impl StreamSchedule {
    /// `serial_time / makespan` — the throughput multiplier concurrency
    /// bought (1.0 = fully serialized).
    pub fn speedup(&self) -> f64 {
        if self.makespan.0 <= 0.0 {
            1.0
        } else {
            self.serial_time.0 / self.makespan.0
        }
    }

    /// The scheduled placements of one stream's launches.
    pub fn stream_launches(&self, id: StreamId) -> Vec<&ScheduledLaunch> {
        self.launches.iter().filter(|l| l.stream == id.0).collect()
    }
}

/// Fraction of the device's SMs a launch occupies while resident.
fn sm_demand(spec: &DeviceSpec, r: &LaunchReport) -> f64 {
    let slots = (r.occupancy.blocks_per_sm.max(1) * spec.num_sms) as f64;
    (r.grid_dim as f64 / slots).min(1.0)
}

/// Fraction of peak DRAM bandwidth the launch sustains while running.
fn bw_demand(spec: &DeviceSpec, r: &LaunchReport) -> f64 {
    if r.time.0 <= 0.0 {
        return 0.0;
    }
    let peak_seconds = r.stats.global_bytes() as f64 / spec.global_bw;
    (peak_seconds / r.time.0).min(1.0)
}

/// Replays `reports` (the launch log from absolute position
/// `abs_offset`) onto a shared device timeline.
///
/// Launches on the same stream execute in issue order; launches on
/// different streams overlap, subject to [`WaitEdge`]s and fair-share
/// slowdown when aggregate SM or bandwidth demand exceeds the machine
/// (see the module docs). Wait edges whose source launches precede
/// `abs_offset` are treated as satisfied.
pub fn schedule(
    spec: &DeviceSpec,
    reports: &[LaunchReport],
    waits: &[WaitEdge],
    abs_offset: usize,
) -> StreamSchedule {
    let n = reports.len();
    let solo: Vec<f64> = reports.iter().map(|r| r.time.0).collect();
    let sm: Vec<f64> = reports.iter().map(|r| sm_demand(spec, r)).collect();
    let bw: Vec<f64> = reports.iter().map(|r| bw_demand(spec, r)).collect();

    // Per-stream issue queues (local indices, in log order).
    let mut queues: std::collections::BTreeMap<usize, std::collections::VecDeque<usize>> =
        std::collections::BTreeMap::new();
    for (i, r) in reports.iter().enumerate() {
        queues.entry(r.stream).or_default().push_back(i);
    }

    let mut remaining = solo.clone();
    let mut started = vec![f64::NAN; n];
    let mut ended = vec![f64::NAN; n];
    let mut done = vec![false; n];
    let mut active: Vec<usize> = Vec::new();
    let mut t = 0.0f64;
    let mut completed = 0usize;

    let deps_done = |local: usize, done: &[bool]| -> bool {
        let abs = abs_offset + local;
        let stream = reports[local].stream;
        waits
            .iter()
            .filter(|e| e.waiting_stream == stream && e.from_abs <= abs)
            .all(|e| {
                reports
                    .iter()
                    .enumerate()
                    .filter(|(j, r)| r.stream == e.source_stream && abs_offset + j < e.upto_abs)
                    .all(|(j, _)| done[j])
            })
    };

    while completed < n {
        // Admit every stream head whose dependencies have completed.
        for q in queues.values() {
            if let Some(&head) = q.front() {
                if !active.contains(&head) && deps_done(head, &done) {
                    active.push(head);
                    started[head] = t;
                }
            }
        }
        assert!(
            !active.is_empty(),
            "stream schedule deadlock: wait edges form a cycle"
        );

        let sm_load: f64 = active.iter().map(|&i| sm[i]).sum();
        let bw_load: f64 = active.iter().map(|&i| bw[i]).sum();
        let rate = 1.0 / sm_load.max(bw_load).max(1.0);

        let dt = active
            .iter()
            .map(|&i| remaining[i] / rate)
            .fold(f64::INFINITY, f64::min);
        t += dt;
        for &i in &active {
            remaining[i] -= dt * rate;
        }
        active.retain(|&i| {
            if remaining[i] <= 1e-18 {
                ended[i] = t;
                done[i] = true;
                completed += 1;
                queues.get_mut(&reports[i].stream).unwrap().pop_front();
                false
            } else {
                true
            }
        });
    }

    let launches = (0..n)
        .map(|i| ScheduledLaunch {
            index: abs_offset + i,
            stream: reports[i].stream,
            start: SimTime(started[i]),
            end: SimTime(ended[i]),
            stretch: if solo[i] > 0.0 {
                (ended[i] - started[i]) / solo[i]
            } else {
                1.0
            },
        })
        .collect();
    StreamSchedule {
        launches,
        makespan: SimTime(t),
        serial_time: SimTime(solo.iter().sum()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCtx, Device, Kernel};

    /// A kernel whose footprint we can dial: `grid` blocks, each charging
    /// `bytes_per_block` of bulk global reads.
    struct Load {
        grid: usize,
        bytes_per_block: u64,
    }

    impl Kernel for Load {
        fn name(&self) -> &'static str {
            "load"
        }
        fn block_dim(&self) -> usize {
            256
        }
        fn grid_dim(&self) -> usize {
            self.grid
        }
        fn run_block(&self, blk: &mut BlockCtx) {
            blk.bulk_global_read(self.bytes_per_block);
        }
    }

    #[test]
    fn default_stream_serializes() {
        let dev = Device::titan_x();
        for _ in 0..4 {
            dev.launch(&Load {
                grid: 1,
                bytes_per_block: 1 << 20,
            })
            .unwrap();
        }
        let s = dev.schedule();
        assert!((s.speedup() - 1.0).abs() < 1e-9, "speedup {}", s.speedup());
        // back-to-back: each launch starts when the previous ends
        for w in s.launches.windows(2) {
            assert!((w[1].start.0 - w[0].end.0).abs() < 1e-15);
        }
    }

    #[test]
    fn small_kernels_on_streams_overlap() {
        let dev = Device::titan_x();
        let streams: Vec<_> = (0..8).map(|_| dev.create_stream()).collect();
        for st in &streams {
            dev.stream_scope(st.id(), || {
                dev.launch(&Load {
                    grid: 1,
                    bytes_per_block: 1 << 16,
                })
                .unwrap();
            });
        }
        let s = dev.schedule();
        assert!(
            s.speedup() > 4.0,
            "8 one-block kernels should mostly overlap, got {}",
            s.speedup()
        );
        // every launch individually unstretched
        for l in &s.launches {
            assert!(l.stretch < 1.5, "stretch {}", l.stretch);
        }
    }

    #[test]
    fn bandwidth_contention_stretches_scans() {
        let dev = Device::titan_x();
        let a = dev.create_stream();
        let b = dev.create_stream();
        // Two full-device scans, each solo-saturating DRAM.
        for st in [&a, &b] {
            dev.stream_scope(st.id(), || {
                dev.launch(&Load {
                    grid: 24 * 8,
                    bytes_per_block: 8 << 20,
                })
                .unwrap();
            });
        }
        let s = dev.schedule();
        // no free lunch: two saturating scans ≈ serial time
        assert!(s.speedup() < 1.2, "speedup {}", s.speedup());
        for l in &s.launches {
            assert!(l.stretch > 1.5, "stretch {}", l.stretch);
        }
    }

    #[test]
    fn events_order_across_streams() {
        let dev = Device::titan_x();
        let a = dev.create_stream();
        let b = dev.create_stream();
        dev.stream_scope(a.id(), || {
            dev.launch(&Load {
                grid: 4,
                bytes_per_block: 1 << 20,
            })
            .unwrap();
        });
        let ev = a.record_event();
        b.wait_event(&ev);
        dev.stream_scope(b.id(), || {
            dev.launch(&Load {
                grid: 4,
                bytes_per_block: 1 << 20,
            })
            .unwrap();
        });
        let s = dev.schedule();
        let la = s.stream_launches(a.id())[0].clone();
        let lb = s.stream_launches(b.id())[0].clone();
        assert!(
            lb.start.0 >= la.end.0 - 1e-15,
            "waiter must start after event source completes"
        );
    }

    #[test]
    fn schedule_since_ignores_prior_epoch() {
        let dev = Device::titan_x();
        let a = dev.create_stream();
        dev.stream_scope(a.id(), || {
            dev.launch(&Load {
                grid: 1,
                bytes_per_block: 1 << 20,
            })
            .unwrap();
        });
        let mark = dev.log_len();
        let b = dev.create_stream();
        b.wait_event(&a.record_event()); // source entirely before `mark`
        dev.stream_scope(b.id(), || {
            dev.launch(&Load {
                grid: 1,
                bytes_per_block: 1 << 20,
            })
            .unwrap();
        });
        let s = dev.schedule_since(mark);
        assert_eq!(s.launches.len(), 1);
        assert!(s.launches[0].start.0.abs() < 1e-15);
    }

    #[test]
    fn stream_scope_restores_and_stamps() {
        let dev = Device::titan_x();
        let st = dev.create_stream();
        assert_eq!(dev.current_stream(), StreamId(0));
        dev.stream_scope(st.id(), || {
            assert_eq!(dev.current_stream(), st.id());
            dev.launch(&Load {
                grid: 1,
                bytes_per_block: 1024,
            })
            .unwrap();
        });
        assert_eq!(dev.current_stream(), StreamId(0));
        dev.launch(&Load {
            grid: 1,
            bytes_per_block: 1024,
        })
        .unwrap();
        assert_eq!(dev.stream_log(st.id()).len(), 1);
        assert_eq!(dev.stream_log(StreamId(0)).len(), 1);
        assert_eq!(dev.launch_log()[0].stream, st.id().0);
    }
}
