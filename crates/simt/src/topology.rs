//! Multi-device cluster topology with an interconnect model.
//!
//! A [`Cluster`] owns N deterministic [`Device`] instances plus the links
//! between them: PCIe-like host links (one per device, full duplex —
//! each direction is an independent channel) and, optionally, peer-to-peer
//! links between device pairs. [`Cluster::transfer`] charges link time in
//! the same simulated-time currency as kernel launches
//! (`latency + bytes / bandwidth`), serializes transfers that share a
//! directed link, and respects the endpoint devices' fault plans: a
//! fault-plan hit drops the transfer (typed error, for the caller to
//! retry) or stalls it by the plan's stall delay. Completed transfers are
//! recorded and can be rendered into the same Chrome tracing format as
//! kernel launches via [`Cluster::chrome_trace`].
//!
//! Without peer links, device↔device traffic is staged through host
//! memory (two legs: source's device→host channel, then destination's
//! host→device channel), which is what PCIe-only boxes actually do.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use crate::device::Device;
use crate::spec::DeviceSpec;
use crate::stats::SimTime;

/// Parameters of one interconnect link (a single direction of travel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Link bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer cost, seconds (DMA setup, hop traversal).
    pub latency: f64,
}

impl LinkSpec {
    /// PCIe 3.0 ×16 effective throughput — the host link of the paper's
    /// testbed generation (matches [`DeviceSpec::titan_x_maxwell`]'s
    /// `pcie_bw`).
    pub fn pcie3_x16() -> Self {
        LinkSpec {
            bandwidth: 12e9,
            latency: 5e-6,
        }
    }

    /// An NVLink-class peer link: higher bandwidth, lower setup cost.
    pub fn nvlink_like() -> Self {
        LinkSpec {
            bandwidth: 40e9,
            latency: 2e-6,
        }
    }

    /// Time for `bytes` to traverse this link once.
    pub fn seconds(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// One end of a transfer: host memory or a device in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Host (CPU) memory.
    Host,
    /// Device by cluster index.
    Device(usize),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host => write!(f, "host"),
            Endpoint::Device(i) => write!(f, "dev{i}"),
        }
    }
}

/// A transfer rejected at the link layer. The link was never occupied.
/// Transient drops (an endpoint's fault plan fired) may be retried —
/// each retry re-rolls the plan — while `permanent` rejections name a
/// device that is down for good: retrying the same endpoints can never
/// succeed and the caller must fail over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferError {
    /// Label the transfer was submitted under.
    pub label: String,
    /// Transfer source.
    pub src: Endpoint,
    /// Transfer destination.
    pub dst: Endpoint,
    /// Cluster index of the device that dropped the transfer (fault
    /// plan fired) or is permanently down.
    pub device: usize,
    /// True when the named device is permanently down (see
    /// [`crate::Device::is_down`]); false for a transient fault-plan
    /// drop.
    pub permanent: bool,
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.permanent {
            write!(
                f,
                "transfer '{}' {} -> {} rejected: dev{} is permanently down",
                self.label, self.src, self.dst, self.device
            )
        } else {
            write!(
                f,
                "transfer '{}' {} -> {} dropped by dev{}'s fault plan",
                self.label, self.src, self.dst, self.device
            )
        }
    }
}

impl std::error::Error for TransferError {}

/// One hop of a completed transfer (staged device↔device transfers have
/// two; everything else has one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferLeg {
    /// Hop source.
    pub from: Endpoint,
    /// Hop destination.
    pub to: Endpoint,
    /// When the hop started occupying its link.
    pub start: SimTime,
    /// When the hop released the link.
    pub end: SimTime,
}

/// A completed interconnect transfer, in cluster simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Caller-supplied label (appears in traces and fault events).
    pub label: String,
    /// Transfer source.
    pub src: Endpoint,
    /// Transfer destination.
    pub dst: Endpoint,
    /// Payload size.
    pub bytes: usize,
    /// When the first leg started (>= the submitted ready time).
    pub start: SimTime,
    /// When the last leg finished; the payload is usable from here.
    pub end: SimTime,
    /// Extra time injected by endpoint fault-plan stalls.
    pub stall: SimTime,
    /// The hops taken (two when staged through host memory).
    pub legs: Vec<TransferLeg>,
}

impl Transfer {
    /// Total time from submission-ready to payload-available.
    pub fn duration(&self) -> SimTime {
        SimTime(self.end.0 - self.start.0)
    }

    /// Whether the transfer was staged through host memory.
    pub fn via_host(&self) -> bool {
        self.legs.len() > 1
    }
}

/// Shape of a simulated multi-GPU node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Hardware parameters of each device (homogeneous node).
    pub device: DeviceSpec,
    /// Number of devices.
    pub num_devices: usize,
    /// Host↔device link, one full-duplex instance per device.
    pub host_link: LinkSpec,
    /// Peer-to-peer link between device pairs; `None` means
    /// device↔device traffic stages through host memory.
    pub peer_link: Option<LinkSpec>,
}

impl ClusterSpec {
    /// A PCIe-only node of `num_devices` of the paper's evaluation GPU.
    pub fn pcie_node(num_devices: usize) -> Self {
        ClusterSpec {
            device: DeviceSpec::titan_x_maxwell(),
            num_devices,
            host_link: LinkSpec::pcie3_x16(),
            peer_link: None,
        }
    }

    /// The same node with NVLink-class peer links enabled.
    pub fn nvlink_node(num_devices: usize) -> Self {
        ClusterSpec {
            peer_link: Some(LinkSpec::nvlink_like()),
            ..Self::pcie_node(num_devices)
        }
    }
}

/// A simulated multi-GPU node: N devices plus the interconnect.
///
/// Devices are independent [`Device`] instances — kernel time accrues on
/// each device's own launch log exactly as in the single-device
/// simulator. The cluster adds the piece a single device cannot model:
/// moving bytes between memories costs link time, links are a shared
/// resource (transfers on the same directed channel serialize), and a
/// device's [`FaultPlan`](crate::FaultPlan) reaches the wire (its
/// transfers can be dropped or stalled).
pub struct Cluster {
    spec: ClusterSpec,
    devices: Vec<Device>,
    transfers: RefCell<Vec<Transfer>>,
    /// Per directed channel: simulated time at which it next frees up.
    link_free: RefCell<HashMap<(Endpoint, Endpoint), SimTime>>,
}

impl Cluster {
    /// Builds a cluster of `spec.num_devices` fresh devices.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.num_devices > 0, "cluster needs at least one device");
        let devices = (0..spec.num_devices)
            .map(|_| Device::new(spec.device))
            .collect();
        Cluster {
            spec,
            devices,
            transfers: RefCell::new(Vec::new()),
            link_free: RefCell::new(HashMap::new()),
        }
    }

    /// The cluster shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of devices in the node.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device by cluster index.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// All devices, in cluster order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Completed transfers, in submission order.
    pub fn transfers(&self) -> Vec<Transfer> {
        self.transfers.borrow().clone()
    }

    /// Number of completed transfers recorded so far.
    pub fn transfers_len(&self) -> usize {
        self.transfers.borrow().len()
    }

    /// Sum of link time across all recorded transfer legs (a transfer
    /// staged through host counts both hops).
    pub fn total_link_time(&self) -> SimTime {
        SimTime(
            self.transfers
                .borrow()
                .iter()
                .flat_map(|t| t.legs.iter())
                .map(|l| l.end.0 - l.start.0)
                .sum(),
        )
    }

    /// Largest transfer completion time recorded so far.
    pub fn last_transfer_end(&self) -> SimTime {
        SimTime(
            self.transfers
                .borrow()
                .iter()
                .map(|t| t.end.0)
                .fold(0.0, f64::max),
        )
    }

    fn link_spec(&self, from: Endpoint, to: Endpoint) -> LinkSpec {
        match (from, to) {
            (Endpoint::Device(_), Endpoint::Device(_)) => self
                .spec
                .peer_link
                .expect("peer leg planned without a peer link"),
            _ => self.spec.host_link,
        }
    }

    /// Moves `bytes` from `src` to `dst`, charging link time.
    ///
    /// `ready` is the simulated time at which the payload exists at the
    /// source (e.g. the producing kernel's completion). The transfer
    /// occupies each directed channel it crosses from
    /// `max(ready, channel free time)`; channels are full duplex, so
    /// `dev0→host` and `host→dev0` never contend with each other, but two
    /// transfers out of `dev0` do serialize.
    ///
    /// Fault interaction, in a fixed roll order (src endpoint first, then
    /// dst): a permanently down endpoint (see [`crate::Device::is_down`])
    /// rejects the transfer outright with a `permanent`
    /// [`TransferError`] naming it — no RNG words are drawn; otherwise an
    /// endpoint device whose plan fires its *launch-failure* rate drops
    /// the transfer before it occupies any link ([`TransferError`]); a
    /// *stall* hit lets the transfer complete but inflates it by the
    /// plan's stall delay. Drops and stalls push a
    /// [`FaultEvent`](crate::FaultEvent) on the responsible device with
    /// the transfer label in the kernel slot.
    pub fn transfer(
        &self,
        src: Endpoint,
        dst: Endpoint,
        bytes: usize,
        label: &str,
        ready: SimTime,
    ) -> Result<Transfer, TransferError> {
        if let Endpoint::Device(i) = src {
            assert!(i < self.devices.len(), "src device {i} out of range");
        }
        if let Endpoint::Device(i) = dst {
            assert!(i < self.devices.len(), "dst device {i} out of range");
        }

        // A permanently down endpoint rejects the transfer before any
        // fault roll: a dead device has no DMA engine to gamble on.
        for ep in [src, dst] {
            let Endpoint::Device(i) = ep else { continue };
            if self.devices[i].is_down() {
                return Err(TransferError {
                    label: label.to_string(),
                    src,
                    dst,
                    device: i,
                    permanent: true,
                });
            }
        }

        // Fault plans reach the wire: either endpoint can drop the DMA.
        let mut stall = SimTime::ZERO;
        for ep in [src, dst] {
            let Endpoint::Device(i) = ep else { continue };
            let dev = &self.devices[i];
            if dev.inject_transfer_failure(label) {
                return Err(TransferError {
                    label: label.to_string(),
                    src,
                    dst,
                    device: i,
                    permanent: false,
                });
            }
            if let Some(delay) = dev.inject_transfer_stall(label) {
                stall += delay;
            }
        }

        // Same memory: nothing crosses a link.
        if src == dst {
            let t = Transfer {
                label: label.to_string(),
                src,
                dst,
                bytes,
                start: ready,
                end: ready + stall,
                stall,
                legs: Vec::new(),
            };
            self.transfers.borrow_mut().push(t.clone());
            return Ok(t);
        }

        let hops: Vec<(Endpoint, Endpoint)> = match (src, dst, self.spec.peer_link) {
            (Endpoint::Device(_), Endpoint::Device(_), Some(_)) => vec![(src, dst)],
            (Endpoint::Device(_), Endpoint::Device(_), None) => {
                vec![(src, Endpoint::Host), (Endpoint::Host, dst)]
            }
            _ => vec![(src, dst)],
        };

        let mut legs = Vec::with_capacity(hops.len());
        let mut cursor = ready;
        let mut link_free = self.link_free.borrow_mut();
        for (hop_i, &(from, to)) in hops.iter().enumerate() {
            let free = link_free.get(&(from, to)).copied().unwrap_or(SimTime::ZERO);
            let start = if free.0 > cursor.0 { free } else { cursor };
            let mut end = start + SimTime(self.link_spec(from, to).seconds(bytes));
            // charge the fault stall on the first hop, so a staged
            // transfer's second hop queues behind the inflated leg
            if hop_i == 0 {
                end += stall;
            }
            link_free.insert((from, to), end);
            legs.push(TransferLeg {
                from,
                to,
                start,
                end,
            });
            cursor = end;
        }
        drop(link_free);

        let t = Transfer {
            label: label.to_string(),
            src,
            dst,
            bytes,
            start: legs[0].start,
            end: legs[legs.len() - 1].end,
            stall,
            legs,
        };
        self.transfers.borrow_mut().push(t.clone());
        Ok(t)
    }

    /// Convenience: host memory → device `i`.
    pub fn host_to_device(
        &self,
        dst: usize,
        bytes: usize,
        label: &str,
        ready: SimTime,
    ) -> Result<Transfer, TransferError> {
        self.transfer(Endpoint::Host, Endpoint::Device(dst), bytes, label, ready)
    }

    /// Convenience: device `i` → host memory.
    pub fn device_to_host(
        &self,
        src: usize,
        bytes: usize,
        label: &str,
        ready: SimTime,
    ) -> Result<Transfer, TransferError> {
        self.transfer(Endpoint::Device(src), Endpoint::Host, bytes, label, ready)
    }

    /// Convenience: device `src` → device `dst` (peer link when the
    /// cluster has one, staged through host otherwise).
    pub fn device_to_device(
        &self,
        src: usize,
        dst: usize,
        bytes: usize,
        label: &str,
        ready: SimTime,
    ) -> Result<Transfer, TransferError> {
        self.transfer(
            Endpoint::Device(src),
            Endpoint::Device(dst),
            bytes,
            label,
            ready,
        )
    }

    /// Renders the cluster timeline as Chrome tracing JSON: one process
    /// per device (pid = index + 1) carrying that device's launch log
    /// laid end-to-end, plus an interconnect process (pid 0) with one
    /// track per directed channel carrying the transfer legs at their
    /// scheduled times.
    pub fn chrome_trace(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };

        push(
            &mut out,
            &mut first,
            concat!(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,",
                "\"args\":{\"name\":\"interconnect\"}}"
            )
            .to_string(),
        );
        for i in 0..self.devices.len() {
            push(
                &mut out,
                &mut first,
                format!(
                    concat!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},",
                        "\"args\":{{\"name\":\"dev{}\"}}}}"
                    ),
                    i + 1,
                    i
                ),
            );
        }

        // device tracks: each device's launch log, sequential
        for (i, dev) in self.devices.iter().enumerate() {
            let mut t_us = 0.0f64;
            for r in dev.launch_log().iter() {
                let dur = r.time.micros();
                push(
                    &mut out,
                    &mut first,
                    format!(
                        concat!(
                            "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",",
                            "\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":1,",
                            "\"args\":{{\"grid\":{},\"block\":{},",
                            "\"bound_by\":\"{}\",\"global_MB\":{:.3}}}}}"
                        ),
                        esc(r.name),
                        t_us,
                        dur,
                        i + 1,
                        r.grid_dim,
                        r.block_dim,
                        r.bound_by(),
                        r.stats.global_bytes() as f64 / 1e6,
                    ),
                );
                t_us += dur;
            }
        }

        // interconnect tracks: one tid per directed channel, first-seen order
        let transfers = self.transfers.borrow();
        let mut channel_tid: HashMap<(Endpoint, Endpoint), usize> = HashMap::new();
        for t in transfers.iter() {
            for leg in &t.legs {
                let next = channel_tid.len();
                let tid = *channel_tid.entry((leg.from, leg.to)).or_insert(next);
                if tid == next {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            concat!(
                                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,",
                                "\"tid\":{},\"args\":{{\"name\":\"{} -> {}\"}}}}"
                            ),
                            tid, leg.from, leg.to
                        ),
                    );
                }
                push(
                    &mut out,
                    &mut first,
                    format!(
                        concat!(
                            "{{\"name\":\"{}\",\"cat\":\"transfer\",\"ph\":\"X\",",
                            "\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},",
                            "\"args\":{{\"bytes\":{},\"stall_us\":{:.3}}}}}"
                        ),
                        esc(&t.label),
                        leg.start.micros(),
                        (leg.end.0 - leg.start.0) * 1e6,
                        tid,
                        t.bytes,
                        t.stall.micros(),
                    ),
                );
            }
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::{BlockCtx, FaultKind, Kernel};

    struct Tiny;
    impl Kernel for Tiny {
        fn name(&self) -> &'static str {
            "tiny"
        }
        fn block_dim(&self) -> usize {
            32
        }
        fn grid_dim(&self) -> usize {
            1
        }
        fn run_block(&self, blk: &mut BlockCtx) {
            blk.bulk_global_read(1024);
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bandwidth() {
        let c = Cluster::new(ClusterSpec::pcie_node(2));
        let t = c
            .host_to_device(0, 12_000_000_000, "load", SimTime::ZERO)
            .unwrap();
        // 12 GB at 12 GB/s + 5 µs latency
        assert!((t.duration().seconds() - (1.0 + 5e-6)).abs() < 1e-9);
        assert_eq!(t.legs.len(), 1);
        assert!(!t.via_host());
    }

    #[test]
    fn same_directed_link_serializes_opposite_directions_do_not() {
        let c = Cluster::new(ClusterSpec::pcie_node(2));
        let a = c.host_to_device(0, 1 << 20, "a", SimTime::ZERO).unwrap();
        let b = c.host_to_device(0, 1 << 20, "b", SimTime::ZERO).unwrap();
        // b queues behind a on the host→dev0 channel
        assert!((b.start.0 - a.end.0).abs() < 1e-12);
        // the opposite direction is an independent channel
        let up = c.device_to_host(0, 1 << 20, "up", SimTime::ZERO).unwrap();
        assert_eq!(up.start, SimTime::ZERO);
        // and another device's channel is independent too
        let other = c.host_to_device(1, 1 << 20, "c", SimTime::ZERO).unwrap();
        assert_eq!(other.start, SimTime::ZERO);
    }

    #[test]
    fn staged_device_to_device_pays_two_hops_peer_link_pays_one() {
        let bytes = 1 << 22;
        let pcie = Cluster::new(ClusterSpec::pcie_node(2));
        let staged = pcie
            .device_to_device(0, 1, bytes, "x", SimTime::ZERO)
            .unwrap();
        assert_eq!(staged.legs.len(), 2);
        assert!(staged.via_host());
        let hop = LinkSpec::pcie3_x16().seconds(bytes);
        assert!((staged.duration().seconds() - 2.0 * hop).abs() < 1e-12);

        let nv = Cluster::new(ClusterSpec::nvlink_node(2));
        let peer = nv
            .device_to_device(0, 1, bytes, "x", SimTime::ZERO)
            .unwrap();
        assert_eq!(peer.legs.len(), 1);
        assert!(peer.duration().seconds() < staged.duration().seconds());
    }

    #[test]
    fn ready_time_delays_the_transfer() {
        let c = Cluster::new(ClusterSpec::pcie_node(1));
        let t = c
            .device_to_host(0, 1 << 10, "late", SimTime(1.5e-3))
            .unwrap();
        assert_eq!(t.start, SimTime(1.5e-3));
        assert!(t.end.0 > 1.5e-3);
    }

    #[test]
    fn fault_plan_drops_and_stalls_transfers() {
        let c = Cluster::new(ClusterSpec::pcie_node(2));
        c.device(1).set_fault_plan(FaultPlan {
            launch_failure_rate: 1.0,
            ..FaultPlan::with_seed(7)
        });
        let err = c
            .device_to_device(0, 1, 1 << 10, "doomed", SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.device, 1);
        // dropped before the wire: no legs recorded, link still free
        assert_eq!(c.transfers_len(), 0);
        let ev = c.device(1).take_fault_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, FaultKind::LaunchFailure);
        assert_eq!(ev[0].kernel, "doomed");

        // stall-only plan: the transfer completes, inflated by the delay
        c.device(1).set_fault_plan(FaultPlan {
            stall_rate: 1.0,
            stall_delay: SimTime(100e-6),
            ..FaultPlan::with_seed(8)
        });
        let t = c.host_to_device(1, 1 << 10, "slow", SimTime::ZERO).unwrap();
        assert_eq!(t.stall, SimTime(100e-6));
        let base = LinkSpec::pcie3_x16().seconds(1 << 10);
        assert!((t.duration().seconds() - (base + 100e-6)).abs() < 1e-12);
        let ev = c.device(1).take_fault_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, FaultKind::StreamStall);
        c.device(1).clear_fault_plan();
    }

    #[test]
    fn no_fault_plan_means_no_rng_draws_and_identical_timing() {
        let a = Cluster::new(ClusterSpec::pcie_node(4));
        let b = Cluster::new(ClusterSpec::pcie_node(4));
        for c in [&a, &b] {
            for i in 0..4 {
                c.device_to_host(i, 4096, "gather", SimTime(i as f64 * 1e-4))
                    .unwrap();
            }
        }
        assert_eq!(a.transfers(), b.transfers());
        assert_eq!(a.total_link_time(), b.total_link_time());
    }

    #[test]
    fn same_endpoint_transfer_is_free() {
        let c = Cluster::new(ClusterSpec::pcie_node(1));
        let t = c
            .device_to_device(0, 0, 1 << 20, "self", SimTime(2e-3))
            .unwrap();
        assert_eq!(t.start, t.end);
        assert!(t.legs.is_empty());
    }

    #[test]
    fn cluster_trace_is_well_formed() {
        let c = Cluster::new(ClusterSpec::pcie_node(2));
        c.device(0).launch(&Tiny).unwrap();
        c.device(1).launch(&Tiny).unwrap();
        c.device_to_host(0, 1 << 16, "shard \"quoted\"", SimTime::ZERO)
            .unwrap();
        c.device_to_host(1, 1 << 16, "gather", SimTime::ZERO)
            .unwrap();
        let json = c.chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        // two device processes + the interconnect process
        assert!(json.contains("\"name\":\"dev0\""));
        assert!(json.contains("\"name\":\"dev1\""));
        assert!(json.contains("\"name\":\"interconnect\""));
        // kernel events on device pids, transfer events on pid 0
        assert_eq!(json.matches("\"cat\":\"kernel\"").count(), 2);
        assert_eq!(json.matches("\"cat\":\"transfer\"").count(), 2);
        // distinct directed channels get distinct named tracks
        assert!(json.contains("\"name\":\"dev0 -> host\""));
        assert!(json.contains("\"name\":\"dev1 -> host\""));
        // labels are escaped
        assert!(json.contains("shard \\\"quoted\\\""));
    }
}
