//! Deterministic, seed-driven fault injection for the simulated device.
//!
//! Real GPU serving stacks survive launch failures, ECC memory events,
//! driver stalls and allocation pressure; the functional simulator is too
//! well-behaved to exercise any of that. This module adds a [`FaultPlan`]
//! the device can carry ([`crate::Device::set_fault_plan`]): a seeded
//! probability for each fault kind, drawn from a private splitmix64
//! stream so a given plan fires the *same* faults at the *same* launches
//! every run — chaos tests stay reproducible and an all-zero plan is
//! bit-identical to no plan at all.
//!
//! Five fault kinds are modeled, each attributed like sanitizer findings
//! (kernel, launch index, stream, and a simulated step/lane coordinate):
//!
//! * **launch failure** — the launch returns
//!   [`crate::LaunchError::DeviceFault`] before any block runs; classified
//!   *transient* (the identical launch may succeed on retry).
//! * **ECC memory corruption** — one element of one *tagged* buffer
//!   (see [`crate::GpuBuffer::tag_ecc`]) is silently overwritten after a
//!   launch completes. Untagged buffers are never corrupted, so a serving
//!   layer opts its intermediate buffers in and re-derives anything whose
//!   tag shows up in the event log.
//! * **stream stall** — the launch completes but its modeled time is
//!   inflated by [`FaultPlan::stall_delay`], pushing deadline-sensitive
//!   queries over their budget.
//! * **allocation OOM** — a fallible allocation
//!   ([`crate::Device::try_alloc`] and friends) fails with
//!   [`crate::OutOfMemory`] despite available capacity. The panicking
//!   allocation paths are *not* injected: code that declared
//!   infallibility cannot report a transient fault, and chaos runs must
//!   never panic inside the simulator.
//! * **device down** — the *permanent* failure domain: once the plan's
//!   deterministic trigger fires ([`FaultPlan::down_at`] in modeled time,
//!   or [`FaultPlan::down_after_faults`] once the transient budget is
//!   spent), the device is lost for good. Every subsequent launch fails
//!   with the non-transient [`crate::LaunchError::DeviceDown`], every
//!   fallible allocation fails, and topology transfers touching the
//!   device are rejected at the link layer. There is no recovery path —
//!   this models ECC retirement / driver wedge / link death, where the
//!   serving layer must fail over, not retry. [`crate::Device::mark_down`]
//!   kills a device directly without a plan.
//!
//! Fault decisions consume random words only for kinds with a nonzero
//! rate, so enabling one kind does not reshuffle another kind's draws
//! relative to a plan where the first is off. The device-down triggers
//! are threshold comparisons and draw **no** random words at all, so a
//! plan whose down fields are unset stays bit-identical to no plan.

use crate::stats::SimTime;

/// Which fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A kernel launch was failed with [`crate::LaunchError::DeviceFault`].
    LaunchFailure,
    /// An element of a tagged buffer was overwritten (simulated ECC hit).
    MemoryCorruption,
    /// A launch's modeled time was inflated by the plan's stall delay.
    StreamStall,
    /// A fallible allocation was failed with [`crate::OutOfMemory`].
    AllocOom,
    /// The device entered the permanent down state (recorded once, at
    /// the transition).
    DeviceDown,
}

impl FaultKind {
    /// Stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LaunchFailure => "launch-failure",
            FaultKind::MemoryCorruption => "memory-corruption",
            FaultKind::StreamStall => "stream-stall",
            FaultKind::AllocOom => "alloc-oom",
            FaultKind::DeviceDown => "device-down",
        }
    }
}

/// A deterministic fault-injection plan.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per launch
/// (or per fallible allocation for [`FaultPlan::oom_rate`]). The default
/// plan is all-zero: installing it changes nothing, which is what keeps
/// benchmark baselines bit-identical when the plan is off.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the private fault RNG stream.
    pub seed: u64,
    /// Probability a launch fails with [`crate::LaunchError::DeviceFault`].
    pub launch_failure_rate: f64,
    /// Probability a completed launch corrupts one element of one live
    /// tagged buffer.
    pub corruption_rate: f64,
    /// Probability a completed launch is stalled by
    /// [`FaultPlan::stall_delay`].
    pub stall_rate: f64,
    /// Modeled time added to a stalled launch.
    pub stall_delay: SimTime,
    /// Probability a fallible allocation fails with
    /// [`crate::OutOfMemory`].
    pub oom_rate: f64,
    /// Hard cap on injected faults (stalls included); `usize::MAX` means
    /// unlimited.
    pub max_faults: usize,
    /// Modeled time at which the device goes permanently down: the first
    /// launch, allocation or transfer attempted once the device's
    /// accumulated launch time has reached this threshold is rejected
    /// with [`crate::LaunchError::DeviceDown`] (or a permanent
    /// [`crate::topology::TransferError`]), and so is everything after.
    /// `None` (the default) never triggers and draws no RNG words.
    pub down_at: Option<SimTime>,
    /// Fault budget that, once exhausted, takes the device permanently
    /// down: after this many injected faults have fired, the next fault
    /// check transitions the device to the down state instead of rolling
    /// another transient. `None` (the default) never triggers.
    pub down_after_faults: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The all-zero plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            launch_failure_rate: 0.0,
            corruption_rate: 0.0,
            stall_rate: 0.0,
            stall_delay: SimTime(100e-6),
            oom_rate: 0.0,
            max_faults: usize::MAX,
            down_at: None,
            down_after_faults: None,
        }
    }

    /// A plan whose only effect is taking the device permanently down
    /// once its modeled launch clock reaches `at`.
    pub fn down_at(at: SimTime) -> Self {
        FaultPlan {
            down_at: Some(at),
            ..FaultPlan::none()
        }
    }

    /// An all-zero plan with a seed (rates are then dialed per field).
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// A uniform plan: every kind fires at `rate`, seeded with `seed`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            launch_failure_rate: rate,
            corruption_rate: rate,
            stall_rate: rate,
            oom_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// True when no fault can ever fire under this plan.
    pub fn is_zero(&self) -> bool {
        self.launch_failure_rate <= 0.0
            && self.corruption_rate <= 0.0
            && self.stall_rate <= 0.0
            && self.oom_rate <= 0.0
            && self.down_at.is_none()
            && self.down_after_faults.is_none()
    }
}

/// One injected fault, attributed like a sanitizer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// What fired.
    pub kind: FaultKind,
    /// Kernel the fault hit (`"alloc"` for [`FaultKind::AllocOom`]).
    pub kernel: String,
    /// Absolute launch-log position the fault is attributed to (the
    /// failed/stalled launch, or the log length at allocation time).
    pub launch_index: usize,
    /// Stream the affected work was stamped with.
    pub stream: usize,
    /// Simulated barrier-interval the fault is attributed to.
    pub step: usize,
    /// Simulated lane the fault is attributed to.
    pub lane: usize,
    /// For [`FaultKind::MemoryCorruption`]: the tag of the buffer that
    /// was hit (see [`crate::GpuBuffer::tag_ecc`]).
    pub target: Option<String>,
    /// Kind-specific detail (corrupted element index, stall delay,
    /// requested bytes).
    pub detail: String,
}

impl FaultEvent {
    /// One-line rendering, e.g. for chaos-report artifacts.
    pub fn render(&self) -> String {
        let target = match &self.target {
            Some(t) => format!(" target={t}"),
            None => String::new(),
        };
        format!(
            "[{}] kernel=`{}` launch#{} stream{} step {} lane {}{} ({})",
            self.kind.name(),
            self.kernel,
            self.launch_index,
            self.stream,
            self.step,
            self.lane,
            target,
            self.detail
        )
    }
}

/// An ECC-corruption target registered by [`crate::GpuBuffer::tag_ecc`].
///
/// Type-erased: the closure holds a weak reference to the buffer's
/// storage, overwrites one element (chosen by the supplied random word)
/// with `T::default()`, and reports the element index — or `None` once
/// the buffer has been dropped.
pub(crate) struct EccTarget {
    pub(crate) label: String,
    pub(crate) alive: Box<dyn Fn() -> bool>,
    pub(crate) corrupt: Box<dyn Fn(u64) -> Option<usize>>,
}

/// Live fault-injection state: the plan, its RNG stream, and the events
/// fired so far.
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: u64,
    fired: usize,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        // splitmix64 state; pre-scramble so seed 0 is a fine seed
        FaultState {
            rng: plan.seed.wrapping_add(0x9E3779B97F4A7C15),
            plan,
            fired: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 (public-domain constants): one multiply-xor chain
        // per draw, deterministic and dependency-free
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Whether the plan's permanent down trigger has fired, given the
    /// device's accumulated modeled launch time. Pure threshold checks —
    /// no RNG words are drawn, so plans without down triggers stay
    /// bit-identical to no plan.
    pub(crate) fn down_due(&self, elapsed: SimTime) -> bool {
        if let Some(at) = self.plan.down_at {
            if elapsed.0 >= at.0 {
                return true;
            }
        }
        if let Some(budget) = self.plan.down_after_faults {
            if self.fired >= budget {
                return true;
            }
        }
        false
    }

    /// Draws a fault decision for one kind; consumes a random word only
    /// when the kind's rate is nonzero. Returns the word used for
    /// attribution/targeting when the fault fires.
    pub(crate) fn roll(&mut self, rate: f64) -> Option<u64> {
        if rate <= 0.0 || self.fired >= self.plan.max_faults {
            return None;
        }
        let w = self.next_u64();
        let u = (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < rate {
            self.fired += 1;
            Some(self.next_u64())
        } else {
            None
        }
    }
}

/// Derives a deterministic (step, lane) attribution from a random word —
/// faults in the simulator do not originate in a particular thread, but
/// reports keep the sanitizer's coordinate shape.
pub(crate) fn attribute(word: u64, block_dim: usize) -> (usize, usize) {
    let step = ((word >> 32) % 8) as usize;
    let lane = (word as usize) % block_dim.max(1);
    (step, lane)
}
