//! Occupancy: how many blocks/warps fit on one SM, and the achieved
//! fraction of peak global bandwidth.
//!
//! The per-thread top-k analysis in the paper (Section 4.1) hinges on
//! this: large `k` means large shared-memory footprints per block, fewer
//! resident warps, and not enough parallelism to hide global memory
//! latency — so achieved bandwidth drops.

use crate::spec::DeviceSpec;

/// Occupancy of a kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Fraction of the SM's maximum warps (0..=1).
    pub occupancy: f64,
    /// Which resource bounds residency.
    pub limiter: Limiter,
}

/// The resource that limits residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Shared memory per block caps resident blocks.
    SharedMemory,
    /// The register file caps resident threads.
    Registers,
    /// The max-warps-per-SM limit binds.
    Threads,
    /// The max-blocks-per-SM limit binds.
    Blocks,
}

impl Occupancy {
    /// Computes occupancy for a block configuration.
    pub fn compute(
        spec: &DeviceSpec,
        block_dim: usize,
        shared_bytes_per_block: usize,
        regs_per_thread: usize,
    ) -> Self {
        let warps_per_block = block_dim.div_ceil(spec.warp_size).max(1);

        let by_shared = spec
            .shared_mem_per_sm
            .checked_div(shared_bytes_per_block)
            .unwrap_or(usize::MAX);
        let by_regs = if regs_per_thread == 0 {
            usize::MAX
        } else {
            spec.regs_per_sm / (regs_per_thread * block_dim)
        };
        let by_threads = spec.max_warps_per_sm / warps_per_block;
        let by_blocks = spec.max_blocks_per_sm;

        let blocks = by_shared.min(by_regs).min(by_threads).min(by_blocks);
        let limiter = if blocks == by_shared {
            Limiter::SharedMemory
        } else if blocks == by_regs {
            Limiter::Registers
        } else if blocks == by_threads {
            Limiter::Threads
        } else {
            Limiter::Blocks
        };
        let warps = blocks * warps_per_block;
        Self {
            blocks_per_sm: blocks,
            warps_per_sm: warps.min(spec.max_warps_per_sm),
            occupancy: (warps.min(spec.max_warps_per_sm)) as f64 / spec.max_warps_per_sm as f64,
            limiter,
        }
    }

    /// Fraction of peak global bandwidth this occupancy can sustain:
    /// linear up to the saturation occupancy, then flat at 1.0.
    pub fn bandwidth_efficiency(&self, spec: &DeviceSpec) -> f64 {
        (self.occupancy / spec.bw_saturation_occupancy).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::titan_x_maxwell()
    }

    #[test]
    fn no_shared_full_occupancy() {
        let o = Occupancy::compute(&spec(), 256, 0, 32);
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
        assert!((o.bandwidth_efficiency(&spec()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        // 32 KB/block on a 96 KB SM → 3 blocks
        let o = Occupancy::compute(&spec(), 256, 32 * 1024, 32);
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.warps_per_sm, 24);
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert!((o.occupancy - 24.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn per_thread_topk_occupancy_cliff() {
        // the paper's per-thread top-k: block of 128 threads, k=128 floats
        // per thread in shared memory = 64 KB/block → 1 block, 4 warps
        let shared = 128 * 128 * 4;
        assert!(shared > 48 * 1024); // would not even launch; use k=64
        let shared = 128 * 64 * 4; // 32 KB
        let o = Occupancy::compute(&spec(), 128, shared, 32);
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.warps_per_sm, 12);
        let eff = o.bandwidth_efficiency(&spec());
        assert!(eff < 0.8, "eff={eff}");
    }

    #[test]
    fn registers_limit() {
        let o = Occupancy::compute(&spec(), 1024, 0, 64);
        // 64 regs × 1024 threads = 64K regs = whole SM → 1 block
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn small_blocks_hit_block_limit() {
        let o = Occupancy::compute(&spec(), 32, 0, 16);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, Limiter::Blocks);
    }

    #[test]
    fn efficiency_clamps_at_one() {
        let o = Occupancy::compute(&spec(), 256, 4096, 32);
        assert!(o.bandwidth_efficiency(&spec()) <= 1.0);
    }
}
