#![forbid(unsafe_code)]
//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the `proptest!` macro with a
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, range strategies, `prop::collection::{vec, btree_set}`,
//! and `prop::sample::select`.
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case panics with the assert message; the
//!   deterministic per-(test, case) seed makes every failure exactly
//!   reproducible, which is what the suite actually relies on.
//! - `prop_assert*` are plain `assert*` aliases (they panic instead of
//!   returning `Err`), so failures surface as ordinary test panics.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{SampleUniform, SeedableRng, Standard};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike real proptest there is no value
    /// tree: strategies produce plain values and nothing shrinks.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut SmallRng) -> Self::Value;
    }

    /// Deterministic rng for a (test name, case index) pair, so any
    /// reported failure can be re-run bit-identically.
    pub fn rng_for(name: &str, case: u32) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// `any::<T>()` — uniform over the whole value domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut SmallRng) -> T {
            T::sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` with a target size drawn from `size`. If the element
    /// domain is too small to reach the target, returns what it has
    /// after a bounded number of draws (still at least one element when
    /// `size.start >= 1`, provided the domain is non-empty).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut SmallRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: expands each contained `fn name(arg in strat,
/// ...) { body }` into a `#[test]`-attributed function that runs `cases`
/// iterations with fresh strategy draws per iteration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::strategy::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(
                        &($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors real proptest's `prelude::prop` module alias so call
    /// sites like `prop::collection::vec(..)` resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy::any;
    }
}
