#![deny(unsafe_code)]
#![warn(missing_docs)]
//! CPU top-k baselines (Section 6.7) and the CPU port of bitonic top-k
//! (Appendix C).
//!
//! Unlike the `topk` crate — which runs on the simulated GPU and reports
//! modeled time — everything here is real, multi-threaded Rust measured
//! in wall-clock time by the benchmark harness:
//!
//! * [`StlPq`] — `std::collections::BinaryHeap` as the stand-in for the
//!   paper's C++ `std::priority_queue` baseline.
//! * [`HandPq`] — a hand-rolled flat-array min-heap with the
//!   compare-against-root fast path, the paper's "Hand PQ".
//! * [`CpuBitonic`] — Appendix C: the partition is processed in
//!   L1-resident vectors of 2048 elements through SortReducer /
//!   BitonicReducer phases with 16-wide combined steps, using SSE-style
//!   4-lane compare-exchanges on `f32` keys (SSE2 intrinsics when
//!   available, portable scalar otherwise).
//!
//! All three parallelize the same way (Section 3.1): partition the input
//! across cores, compute per-partition top-k, reduce.

pub mod bitonic;
pub mod heap;
pub mod select;

pub use bitonic::CpuBitonic;
pub use heap::{HandPq, StlPq};
pub use select::{CpuDelegateSelect, CpuRadixSelect, CpuSort};

use datagen::TopKItem;

/// A CPU top-k algorithm: takes a slice, returns the largest `k` items in
/// descending key order.
pub trait CpuTopK<T: TopKItem>: Send + Sync {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Computes the top-k of one partition, single-threaded.
    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T>;

    /// Full parallel top-k: partitions `data` across `threads` cores,
    /// computes per-partition top-k, merges, and re-selects.
    fn topk(&self, data: &[T], k: usize, threads: usize) -> Vec<T> {
        assert!(k >= 1, "k must be at least 1");
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let threads = threads.max(1);
        if threads == 1 || data.len() < 4 * k * threads {
            let mut v = self.partition_topk(data, k);
            v.truncate(k);
            return v;
        }
        let chunk = data.len().div_ceil(threads);
        let mut partials: Vec<Vec<T>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk)
                .map(|part| s.spawn(move || self.partition_topk(part, k)))
                .collect();
            for h in handles {
                partials.push(h.join().expect("partition worker panicked"));
            }
        });
        let mut all: Vec<T> = partials.into_iter().flatten().collect();
        // merge by the full item order (key, then the row-id tie-break
        // where the item carries one) so duplicate-heavy keys pick the
        // same winners as the device engines
        all.sort_unstable_by(|a, b| {
            if a.item_lt(b) {
                std::cmp::Ordering::Greater
            } else if b.item_lt(a) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        all.truncate(k);
        all
    }
}

/// Infallible single-threaded heap top-k — the final rung of the qdb
/// serving layer's degradation ladder. Unlike [`CpuTopK::topk`] it
/// accepts k = 0 and empty input (returning an empty result) so a
/// degraded query can never panic, and it needs no thread-count tuning.
pub fn heap_topk<T: TopKItem>(data: &[T], k: usize) -> Vec<T> {
    let k = k.min(data.len());
    if k == 0 {
        return Vec::new();
    }
    HandPq.partition_topk(data, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let data: Vec<f32> = Uniform.generate(100_000, 80);
        for alg in [&StlPq as &dyn CpuTopK<f32>, &HandPq, &CpuBitonic::default()] {
            let single = alg.topk(&data, 50, 1);
            let multi = alg.topk(&data, 50, 8);
            assert_eq!(keybits(&single), keybits(&multi), "{}", alg.name());
            assert_eq!(
                keybits(&single),
                keybits(&reference_topk(&data, 50)),
                "{}",
                alg.name()
            );
        }
    }

    #[test]
    fn degenerate_partitions() {
        // more threads than useful work: partitioning must still be sound
        let data: Vec<u32> = Uniform.generate(100, 81);
        for alg in [&StlPq as &dyn CpuTopK<u32>, &HandPq, &CpuBitonic::default()] {
            let got = alg.topk(&data, 10, 16);
            assert_eq!(got, reference_topk(&data, 10), "{}", alg.name());
        }
    }

    #[test]
    fn k_bigger_than_input() {
        let data = vec![3u32, 9, 1];
        assert_eq!(StlPq.topk(&data, 10, 4), vec![9, 3, 1]);
        assert_eq!(HandPq.topk(&data, 10, 4), vec![9, 3, 1]);
        assert_eq!(CpuBitonic::default().topk(&data, 10, 4), vec![9, 3, 1]);
    }
}
