//! Heap-based CPU top-k: the STL priority queue baseline and the
//! hand-optimized min-heap (Section 6.7).

use crate::CpuTopK;
use datagen::TopKItem;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wrapper giving items `Ord` by key bits so they fit `BinaryHeap`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ByKey<T: TopKItem>(T);

impl<T: TopKItem> Eq for ByKey<T> {}
impl<T: TopKItem> PartialOrd for ByKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: TopKItem> Ord for ByKey<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key_bits().cmp(&other.0.key_bits())
    }
}

/// The `std::priority_queue` baseline: a library binary heap used as a
/// size-k min-heap (via `Reverse`), checking each element against the
/// minimum before inserting.
#[derive(Debug, Clone, Copy, Default)]
pub struct StlPq;

impl<T: TopKItem> CpuTopK<T> for StlPq {
    fn name(&self) -> &'static str {
        "stl-pq"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Reverse<ByKey<T>>> = BinaryHeap::with_capacity(k + 1);
        let mut iter = data.iter();
        for &x in iter.by_ref().take(k) {
            heap.push(Reverse(ByKey(x)));
        }
        for &x in iter {
            // compare against the current minimum before touching the heap
            let min = heap.peek().expect("heap is non-empty").0 .0;
            if min.item_lt(&x) {
                heap.pop();
                heap.push(Reverse(ByKey(x)));
            }
        }
        let mut out: Vec<T> = heap.into_iter().map(|r| r.0 .0).collect();
        out.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        out
    }
}

/// The paper's "Hand PQ": a flat-array min-heap with inlined sift-down
/// and the root fast-path compare, avoiding the container overhead of the
/// library queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct HandPq;

impl HandPq {
    #[inline]
    fn sift_down<T: TopKItem>(heap: &mut [T], mut i: usize) {
        let n = heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut c = l;
            if r < n && heap[r].item_lt(&heap[l]) {
                c = r;
            }
            if heap[c].item_lt(&heap[i]) {
                heap.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
    }

    /// Floyd heap construction: O(k) instead of k pushes.
    fn heapify<T: TopKItem>(heap: &mut [T]) {
        for i in (0..heap.len() / 2).rev() {
            Self::sift_down(heap, i);
        }
    }
}

impl<T: TopKItem> CpuTopK<T> for HandPq {
    fn name(&self) -> &'static str {
        "hand-pq"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let mut heap: Vec<T> = data[..k].to_vec();
        Self::heapify(&mut heap);
        for &x in &data[k..] {
            if heap[0].item_lt(&x) {
                heap[0] = x;
                Self::sift_down(&mut heap, 0);
            }
        }
        heap.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Decreasing, Distribution, Increasing, Kv, Uniform};

    #[test]
    fn stl_pq_matches_reference() {
        let data: Vec<f32> = Uniform.generate(10_000, 90);
        for k in [1usize, 2, 7, 32, 500] {
            assert_eq!(
                StlPq.partition_topk(&data, k),
                reference_topk(&data, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn hand_pq_matches_reference() {
        let data: Vec<f32> = Uniform.generate(10_000, 91);
        for k in [1usize, 2, 7, 32, 500] {
            assert_eq!(
                HandPq.partition_topk(&data, k),
                reference_topk(&data, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn sorted_inputs() {
        let inc: Vec<u32> = Increasing.generate(5_000, 92);
        let dec: Vec<u32> = Decreasing.generate(5_000, 92);
        for k in [1usize, 16, 100] {
            assert_eq!(HandPq.partition_topk(&inc, k), reference_topk(&inc, k));
            assert_eq!(HandPq.partition_topk(&dec, k), reference_topk(&dec, k));
            assert_eq!(StlPq.partition_topk(&inc, k), reference_topk(&inc, k));
        }
    }

    #[test]
    fn heapify_establishes_min_heap() {
        let mut v: Vec<u32> = Uniform.generate(257, 93);
        HandPq::heapify(&mut v);
        for i in 1..v.len() {
            let parent = (i - 1) / 2;
            assert!(
                !v[i].item_lt(&v[parent]),
                "heap property violated at {i}: {} < {}",
                v[i],
                v[parent]
            );
        }
    }

    #[test]
    fn duplicates_and_negatives() {
        let data = vec![-1.5f32, 3.0, 3.0, -1.5, 0.0, 3.0];
        assert_eq!(HandPq.partition_topk(&data, 4), vec![3.0, 3.0, 3.0, 0.0]);
        assert_eq!(StlPq.partition_topk(&data, 4), vec![3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn payloads_preserved() {
        let data: Vec<Kv<u32>> = (0..1000u32).map(|i| Kv::new(i * 37 % 1009, i)).collect();
        let got = HandPq.partition_topk(&data, 3);
        let expect = reference_topk_kv(&data, 3);
        assert_eq!(got, expect);
        let got = StlPq.partition_topk(&data, 3);
        assert_eq!(got, expect);
    }

    fn reference_topk_kv(data: &[Kv<u32>], k: usize) -> Vec<Kv<u32>> {
        let mut v = data.to_vec();
        v.sort_unstable_by_key(|kv| std::cmp::Reverse(kv.key));
        v.truncate(k);
        v
    }
}
