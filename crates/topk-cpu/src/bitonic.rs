// the one sanctioned unsafe island in the workspace: the SSE/AVX2
// compare-exchange intrinsics below (the CI unsafe gate allowlists
// exactly this file)
#![allow(unsafe_code)]
//! Bitonic top-k on the CPU (Appendix C).
//!
//! Each core's partition is processed in L1-resident *vectors* (2048
//! elements by default, ≈ 8 KB of `f32` — comfortably inside L1): a
//! SortReducer phase turns an unsorted vector into 1/16th of its size in
//! bitonic runs of `k`, and BitonicReducer phases keep shrinking the
//! survivors until one vector remains, which is reduced to exactly `k`.
//!
//! For bare `f32` keys the compare-exchange steps use 4-lane SSE2
//! min/max intrinsics (the 128-bit SSE implementation the paper cites);
//! every other item type takes the portable scalar path. NaN keys force
//! the scalar path — SSE `min/max` NaN semantics do not match the total
//! bit order.

use crate::CpuTopK;
use datagen::TopKItem;
use sortnet::{host, local_sort_steps, next_pow2, rebuild_steps, Step};
use std::any::TypeId;

/// Default vector (block) size: 2048 elements, as in Algorithm 5.
pub const DEFAULT_VECTOR: usize = 2048;

/// CPU bitonic top-k (Appendix C).
#[derive(Debug, Clone, Copy)]
pub struct CpuBitonic {
    /// Elements per L1-resident vector (a power of two ≥ 64).
    pub vector_size: usize,
}

impl Default for CpuBitonic {
    fn default() -> Self {
        Self {
            vector_size: DEFAULT_VECTOR,
        }
    }
}

impl CpuBitonic {
    /// Uses a custom L1 vector size (power of two ≥ 64).
    pub fn with_vector_size(vector_size: usize) -> Self {
        assert!(
            vector_size.is_power_of_two() && vector_size >= 64,
            "vector size must be a power of two ≥ 64"
        );
        Self { vector_size }
    }

    /// SortReducer: unsorted vector → `len >> merges` elements of bitonic
    /// runs of `k`, appended to `out`.
    fn sort_reduce<T: TopKItem>(
        &self,
        vec_buf: &mut [T],
        k: usize,
        merges: usize,
        out: &mut Vec<T>,
        simd: bool,
    ) {
        for step in local_sort_steps(k) {
            apply_step_accel(vec_buf, step, simd);
        }
        let mut len = vec_buf.len();
        for m in 0..merges {
            merge_in_place(vec_buf, len, k);
            len /= 2;
            if m + 1 < merges {
                for step in rebuild_steps(k) {
                    apply_step_accel(&mut vec_buf[..len], step, simd);
                }
            }
        }
        out.extend_from_slice(&vec_buf[..len]);
    }

    /// BitonicReducer: bitonic runs of `k` → reduced by `2^merges`.
    fn bitonic_reduce<T: TopKItem>(
        &self,
        vec_buf: &mut [T],
        k: usize,
        merges: usize,
        out: &mut Vec<T>,
        simd: bool,
    ) {
        let mut len = vec_buf.len();
        for _ in 0..merges {
            for step in rebuild_steps(k) {
                apply_step_accel(&mut vec_buf[..len], step, simd);
            }
            merge_in_place(vec_buf, len, k);
            len /= 2;
        }
        out.extend_from_slice(&vec_buf[..len]);
    }
}

impl<T: TopKItem> CpuTopK<T> for CpuBitonic {
    fn name(&self) -> &'static str {
        "cpu-bitonic"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k_req = k.min(data.len());
        if k_req == 0 {
            return Vec::new();
        }
        let k_eff = next_pow2(k_req);
        let vs = self.vector_size.max(2 * k_eff);
        if data.len() <= vs {
            return host::bitonic_topk_host(data, k_req);
        }
        let simd = use_simd::<T>(data);

        // phase 1: SortReducer over every vector
        let merges = (sortnet::log2(vs / k_eff) as usize).min(4);
        let mut cur: Vec<T> = Vec::with_capacity(data.len() / (1 << merges) + vs);
        let mut vec_buf = vec![T::min_sentinel(); vs];
        for chunk in data.chunks(vs) {
            vec_buf[..chunk.len()].copy_from_slice(chunk);
            vec_buf[chunk.len()..].fill(T::min_sentinel());
            self.sort_reduce(&mut vec_buf, k_eff, merges, &mut cur, simd);
        }

        // subsequent phases: BitonicReducer until one vector remains
        while cur.len() > vs {
            let mut next: Vec<T> = Vec::with_capacity(cur.len() / (1 << merges) + vs);
            for chunk in cur.chunks(vs) {
                vec_buf[..chunk.len()].copy_from_slice(chunk);
                // pad with whole sentinel runs (they are valid bitonic runs)
                vec_buf[chunk.len()..].fill(T::min_sentinel());
                self.bitonic_reduce(&mut vec_buf, k_eff, merges, &mut next, simd);
            }
            cur = next;
        }

        // final vector: reduce to k_eff and sort
        let len = next_pow2(cur.len());
        cur.resize(len, T::min_sentinel());
        while cur.len() > k_eff {
            for step in rebuild_steps(k_eff) {
                apply_step_accel(&mut cur, step, simd);
            }
            let len = cur.len();
            merge_in_place(&mut cur, len, k_eff);
            cur.truncate(len / 2);
        }
        for step in rebuild_steps(k_eff) {
            apply_step_accel(&mut cur, step, simd);
        }
        cur.reverse();
        cur.truncate(k_req);
        cur
    }
}

/// Pairwise-max merge of aligned `2k` windows, compacting in place.
fn merge_in_place<T: TopKItem>(buf: &mut [T], len: usize, k: usize) {
    debug_assert!(len.is_multiple_of(2 * k));
    for w in 0..len / (2 * k) {
        for j in 0..k {
            let a = buf[2 * k * w + j];
            let b = buf[2 * k * w + j + k];
            buf[k * w + j] = if a.item_lt(&b) { b } else { a };
        }
    }
}

/// Whether the SIMD fast path applies: bare `f32` keys with no NaNs.
fn use_simd<T: TopKItem>(data: &[T]) -> bool {
    if TypeId::of::<T>() != TypeId::of::<f32>() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if !is_x86_feature_detected!("sse2") {
            return false;
        }
        // SAFETY: T is f32 (checked by TypeId above)
        let f: &[f32] = unsafe { &*(data as *const [T] as *const [f32]) };
        !f.iter().any(|x| x.is_nan())
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One network step, taking the widest available SIMD path for `f32`
/// when allowed (AVX2 8-wide for `j ≥ 8`, SSE2 4-wide for `j ≥ 4`).
fn apply_step_accel<T: TopKItem>(data: &mut [T], step: Step, simd: bool) {
    if simd && TypeId::of::<T>() == TypeId::of::<f32>() && step.j >= 4 {
        // SAFETY: T is f32 (checked by TypeId)
        let f: &mut [f32] = unsafe { &mut *(data as *mut [T] as *mut [f32]) };
        #[cfg(target_arch = "x86_64")]
        {
            if step.j >= 8 && is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 detected; NaN-free guaranteed by use_simd
                unsafe { apply_step_f32_avx2(f, step) };
            } else {
                // SAFETY: SSE2 is baseline on x86_64
                unsafe { apply_step_f32_sse(f, step) };
            }
            return;
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            host::apply_step(f, step);
            return;
        }
    }
    host::apply_step(data, step);
}

/// SSE2 compare-exchange at distance `j ≥ 4`: 4 lanes at a time. The
/// direction is constant over each aligned 4-lane chunk because
/// `run ≥ 2j ≥ 8`.
///
/// # Safety
/// Requires SSE2 (guaranteed on x86_64) and NaN-free input.
#[cfg(target_arch = "x86_64")]
unsafe fn apply_step_f32_sse(data: &mut [f32], step: Step) {
    use std::arch::x86_64::*;
    let n = data.len();
    let j = step.j;
    debug_assert!(j >= 4 && j.is_power_of_two());
    let mut base = 0;
    while base + j < n {
        // `base` iterates the lower-partner runs: blocks of j indices with
        // the j-bit clear
        for i in (base..base + j).step_by(4) {
            if i + j + 4 > n {
                break;
            }
            let asc = step.ascending(i);
            // SAFETY (caller contract): i+4 ≤ base+j ≤ n and i+j+4 ≤ n
            unsafe {
                let pa = data.as_mut_ptr().add(i);
                let pb = data.as_mut_ptr().add(i + j);
                let a = _mm_loadu_ps(pa);
                let b = _mm_loadu_ps(pb);
                let lo = _mm_min_ps(a, b);
                let hi = _mm_max_ps(a, b);
                if asc {
                    _mm_storeu_ps(pa, lo);
                    _mm_storeu_ps(pb, hi);
                } else {
                    _mm_storeu_ps(pa, hi);
                    _mm_storeu_ps(pb, lo);
                }
            }
        }
        base += 2 * j;
    }
}

/// AVX2 compare-exchange at distance `j ≥ 8`: 8 lanes at a time
/// (`run ≥ 2j ≥ 16`, so direction is constant per aligned 8-lane chunk).
///
/// # Safety
/// Requires AVX2 and NaN-free input.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn apply_step_f32_avx2(data: &mut [f32], step: Step) {
    use std::arch::x86_64::*;
    let n = data.len();
    let j = step.j;
    debug_assert!(j >= 8 && j.is_power_of_two());
    let mut base = 0;
    while base + j < n {
        for i in (base..base + j).step_by(8) {
            if i + j + 8 > n {
                break;
            }
            let asc = step.ascending(i);
            // SAFETY (caller contract): i+8 ≤ base+j ≤ n and i+j+8 ≤ n
            unsafe {
                let pa = data.as_mut_ptr().add(i);
                let pb = data.as_mut_ptr().add(i + j);
                let a = _mm256_loadu_ps(pa);
                let b = _mm256_loadu_ps(pb);
                let lo = _mm256_min_ps(a, b);
                let hi = _mm256_max_ps(a, b);
                if asc {
                    _mm256_storeu_ps(pa, lo);
                    _mm256_storeu_ps(pb, hi);
                } else {
                    _mm256_storeu_ps(pa, hi);
                    _mm256_storeu_ps(pb, lo);
                }
            }
        }
        base += 2 * j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Decreasing, Distribution, Increasing, Kv, Uniform};

    #[test]
    fn matches_reference_across_k() {
        let data: Vec<f32> = Uniform.generate(1 << 16, 100);
        let alg = CpuBitonic::default();
        for k in [1usize, 3, 8, 32, 100, 256] {
            let got = alg.partition_topk(&data, k);
            assert_eq!(got, reference_topk(&data, k), "k={k}");
        }
    }

    #[test]
    fn sse_step_equals_scalar_step() {
        let base: Vec<f32> = Uniform.generate(1 << 12, 101);
        for j in [4usize, 8, 64, 512] {
            for run in [2 * j, 4 * j, 1 << 12] {
                let step = Step { j, run };
                let mut scalar = base.clone();
                host::apply_step(&mut scalar, step);
                let mut simd = base.clone();
                unsafe { apply_step_f32_sse(&mut simd, step) };
                assert_eq!(scalar, simd, "j={j} run={run}");
            }
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_step_equals_scalar_step() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        let base: Vec<f32> = Uniform.generate(1 << 12, 111);
        for j in [8usize, 16, 128, 1024] {
            for run in [2 * j, 4 * j, 1 << 12] {
                let step = Step { j, run };
                let mut scalar = base.clone();
                host::apply_step(&mut scalar, step);
                let mut simd = base.clone();
                unsafe { apply_step_f32_avx2(&mut simd, step) };
                assert_eq!(scalar, simd, "j={j} run={run}");
            }
        }
    }

    #[test]
    fn non_f32_takes_scalar_path() {
        let data: Vec<u64> = Uniform.generate(1 << 14, 102);
        let got = CpuBitonic::default().partition_topk(&data, 16);
        assert_eq!(got, reference_topk(&data, 16));
    }

    #[test]
    fn nan_inputs_fall_back_and_stay_total() {
        let mut data: Vec<f32> = Uniform.generate(8192, 103);
        data[17] = f32::NAN;
        data[4001] = f32::NAN;
        assert!(!use_simd::<f32>(&data));
        let got = CpuBitonic::default().partition_topk(&data, 4);
        // positive NaN sorts above everything in bit order
        assert!(got[0].is_nan() && got[1].is_nan());
        assert!(!got[2].is_nan());
    }

    #[test]
    fn sorted_distributions() {
        let inc: Vec<f32> = Increasing.generate(1 << 15, 104);
        let dec: Vec<f32> = Decreasing.generate(1 << 15, 104);
        let alg = CpuBitonic::default();
        assert_eq!(alg.partition_topk(&inc, 64), reference_topk(&inc, 64));
        assert_eq!(alg.partition_topk(&dec, 64), reference_topk(&dec, 64));
    }

    #[test]
    fn payload_items_scalar() {
        let data: Vec<Kv<u32>> = (0..(1 << 14) as u32)
            .map(|i| Kv::new(i.wrapping_mul(2654435761), i))
            .collect();
        let got = CpuBitonic::default().partition_topk(&data, 8);
        let mut expect = data.clone();
        expect.sort_unstable_by_key(|kv| std::cmp::Reverse(kv.key));
        expect.truncate(8);
        assert_eq!(got, expect);
    }

    #[test]
    fn custom_vector_size() {
        let data: Vec<f32> = Uniform.generate(1 << 14, 105);
        for vs in [64usize, 256, 4096] {
            let alg = CpuBitonic::with_vector_size(vs);
            assert_eq!(
                alg.partition_topk(&data, 32),
                reference_topk(&data, 32),
                "vs={vs}"
            );
        }
    }

    #[test]
    fn large_k_exceeding_vector_budget() {
        // vs must grow to hold 2k
        let data: Vec<f32> = Uniform.generate(1 << 14, 106);
        let alg = CpuBitonic::with_vector_size(64);
        assert_eq!(alg.partition_topk(&data, 512), reference_topk(&data, 512));
    }
}
