//! Selection-style CPU partition kernels: full sort-and-choose and MSD
//! radix select.
//!
//! These give the CPU execution backend a counterpart for every
//! [`TopKAlgorithm`](https://docs.rs/topk) variant: `Sort` maps to
//! [`CpuSort`] (sort everything, take `k` — the MapD-style baseline) and
//! the threshold-finding algorithms (`RadixSelect`, `BucketSelect`) map
//! to [`CpuRadixSelect`], the host analog of the paper's §2.3 digit-wise
//! selection. Both plug into [`CpuTopK`]'s partition/merge parallelism.

use crate::CpuTopK;
use datagen::{RadixBits, TopKItem};

/// Sort-and-choose: sort the whole partition descending by key bits, take
/// the first `k`. The CPU stand-in for the full-sort baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuSort;

impl<T: TopKItem> CpuTopK<T> for CpuSort {
    fn name(&self) -> &'static str {
        "cpu-sort"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let mut v = data.to_vec();
        v.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        v.truncate(k);
        v
    }
}

/// MSD radix select: finds the k-th largest key with one 256-bucket
/// histogram pass per 8-bit digit (most significant first), then gathers
/// the winners in a final scan — the CPU analog of the paper's radix /
/// bucket select family (§2.3): no full sort, O(digits · n) passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuRadixSelect;

impl<T: TopKItem> CpuTopK<T> for CpuRadixSelect {
    fn name(&self) -> &'static str {
        "cpu-radix-select"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let digits = <T::KeyBits as RadixBits>::BITS / 8;
        // Narrow a most-significant bit prefix until it pins down the
        // k-th largest key exactly.
        let mut prefix = <T::KeyBits as RadixBits>::ZERO;
        let mut prefix_digits = 0u32;
        let mut remaining = k;
        for d in 0..digits {
            let mut hist = [0usize; 256];
            for x in data {
                let bits = x.key_bits();
                if matches_prefix(bits, prefix, prefix_digits) {
                    hist[bits.msd_digit(d) as usize] += 1;
                }
            }
            // walk buckets from the largest digit down
            let mut digit = 255usize;
            loop {
                if hist[digit] >= remaining {
                    break;
                }
                remaining -= hist[digit];
                debug_assert!(digit > 0, "histogram must cover the remaining count");
                digit -= 1;
            }
            let shift = <T::KeyBits as RadixBits>::BITS - 8 * (d + 1);
            prefix = prefix | (<T::KeyBits as RadixBits>::from_u64(digit as u64) << shift);
            prefix_digits = d + 1;
        }
        // `prefix` is now the exact k-th largest key: everything above it
        // is a winner, plus `remaining` items equal to it.
        let threshold = prefix;
        let mut out = Vec::with_capacity(k);
        let mut at_threshold = remaining;
        for &x in data {
            let bits = x.key_bits();
            if bits > threshold {
                out.push(x);
            } else if bits == threshold && at_threshold > 0 {
                out.push(x);
                at_threshold -= 1;
            }
        }
        out.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        debug_assert_eq!(out.len(), k);
        out
    }
}

/// Delegate select: the CPU counterpart of the device delegate
/// decomposition (Dr. Top-k). The partition is cut into fixed-length
/// chunks; each chunk's maximum (full item order) is its delegate. The
/// k-th best delegate is a threshold: only chunks whose delegate key is
/// `≥` it (ties kept) can contribute to the top-k, and only those chunks
/// are re-examined.
#[derive(Debug, Clone, Copy)]
pub struct CpuDelegateSelect {
    /// Chunk (delegate granularity) length in items.
    pub subrange: usize,
}

impl Default for CpuDelegateSelect {
    fn default() -> Self {
        // same granularity as the device algorithm's default
        CpuDelegateSelect { subrange: 2048 }
    }
}

impl<T: TopKItem> CpuTopK<T> for CpuDelegateSelect {
    fn name(&self) -> &'static str {
        "cpu-delegate-select"
    }

    fn partition_topk(&self, data: &[T], k: usize) -> Vec<T> {
        let k = k.min(data.len());
        if k == 0 {
            return Vec::new();
        }
        let s = self.subrange.max(1);
        let chunks: Vec<&[T]> = data.chunks(s).collect();
        let delegates: Vec<T> = chunks
            .iter()
            .map(|chunk| {
                let mut best = chunk[0];
                for item in &chunk[1..] {
                    if best.item_lt(item) {
                        best = *item;
                    }
                }
                best
            })
            .collect();
        let gathered: Vec<T> = if delegates.len() > k {
            // threshold = the k-th best delegate key; chunks with a
            // strictly smaller delegate key are dominated by k better
            // items elsewhere and cannot contribute
            let mut keys: Vec<_> = delegates.iter().map(|d| d.key_bits()).collect();
            keys.sort_unstable_by_key(|&b| std::cmp::Reverse(b));
            let tau = keys[k - 1];
            chunks
                .iter()
                .zip(&delegates)
                .filter(|(_, d)| d.key_bits() >= tau)
                .flat_map(|(chunk, _)| chunk.iter().copied())
                .collect()
        } else {
            data.to_vec()
        };
        let mut out = gathered;
        out.sort_unstable_by(|a, b| {
            if a.item_lt(b) {
                std::cmp::Ordering::Greater
            } else if b.item_lt(a) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        out.truncate(k);
        out
    }
}

/// True when the top `prefix_digits` 8-bit digits of `bits` equal those
/// of `prefix`.
#[inline]
fn matches_prefix<B: RadixBits>(bits: B, prefix: B, prefix_digits: u32) -> bool {
    if prefix_digits == 0 {
        return true;
    }
    let shift = B::BITS - 8 * prefix_digits;
    (bits >> shift) == (prefix >> shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Kv, Uniform};

    fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
        v.iter().map(|x| x.key_bits()).collect()
    }

    #[test]
    fn select_kernels_match_reference() {
        let data: Vec<f32> = Uniform.generate(50_000, 42);
        let delegate = CpuDelegateSelect::default();
        for alg in [&CpuSort as &dyn CpuTopK<f32>, &CpuRadixSelect, &delegate] {
            for k in [1usize, 7, 64, 1000] {
                let got = alg.topk(&data, k, 4);
                let want = reference_topk(&data, k);
                assert_eq!(keybits(&got), keybits(&want), "{} k={k}", alg.name());
            }
        }
    }

    #[test]
    fn radix_select_handles_duplicate_heavy_keys() {
        // every key collides: the threshold bucket carries most of k
        let data: Vec<Kv<u32>> = (0..10_000u32).map(|i| Kv::new(i % 7, i)).collect();
        let got = CpuRadixSelect.topk(&data, 100, 8);
        let mut want = data.clone();
        want.sort_unstable_by_key(|x| std::cmp::Reverse(x.key_bits()));
        want.truncate(100);
        assert_eq!(keybits(&got), keybits(&want));
    }

    #[test]
    fn radix_select_on_64_bit_keys() {
        let data: Vec<u64> = Uniform.generate(20_000, 7);
        let got = CpuRadixSelect.topk(&data, 33, 4);
        assert_eq!(keybits(&got), keybits(&reference_topk(&data, 33)));
    }

    #[test]
    fn k_at_or_past_input_length() {
        let data = vec![4u32, 8, 2];
        assert_eq!(CpuSort.topk(&data, 3, 2), vec![8, 4, 2]);
        assert_eq!(CpuRadixSelect.topk(&data, 10, 2), vec![8, 4, 2]);
        assert_eq!(
            CpuDelegateSelect::default().topk(&data, 10, 2),
            vec![8, 4, 2]
        );
    }

    #[test]
    fn delegate_select_ties_break_by_id_like_the_full_sort() {
        // every chunk's delegate collides on the key — the threshold
        // keeps them all, and the id tie-break decides the winners
        let data: Vec<Kv<u32>> = (0..40_000u32).map(|i| Kv::new(i % 13, i)).collect();
        let delegate = CpuDelegateSelect { subrange: 512 };
        let got = delegate.topk(&data, 100, 4);
        // oracle: full item order (key, then smaller row id wins) —
        // CpuSort is key-only and does not pin the tie winners
        let mut want = data.clone();
        want.sort_unstable_by(|a, b| {
            if a.item_lt(b) {
                std::cmp::Ordering::Greater
            } else if b.item_lt(a) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        want.truncate(100);
        // compare full items: equal keys must pick the same row ids
        assert_eq!(got, want);
    }

    #[test]
    fn delegate_select_with_tiny_subrange_and_skew() {
        // descending-sorted input: only the first chunks contribute
        let data: Vec<f32> = (0..30_000).rev().map(|i| i as f32).collect();
        let delegate = CpuDelegateSelect { subrange: 64 };
        let got = delegate.topk(&data, 33, 4);
        assert_eq!(keybits(&got), keybits(&reference_topk(&data, 33)));
    }
}
