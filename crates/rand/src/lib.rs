#![forbid(unsafe_code)]
//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::gen` for the primitive numeric
//! types, and `Rng::gen_range` over half-open integer/float ranges.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through splitmix64, so the statistical
//! quality is adequate for data generation and tests. Streams are NOT
//! bit-compatible with the real crate; nothing in this repo depends on
//! specific rand 0.8 output values, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled from the "standard" distribution
/// (`rng.gen::<T>()`): uniform over all values for integers, uniform in
/// `[0, 1)` for floats.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (`high` exclusive). Callers
    /// guarantee `low < high`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]` (inclusive).
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u: $t = Standard::sample(rng);
                low + u * (high - low)
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_uniform(rng, low, high)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by `gen_range`.
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_uniform_inclusive(rng, low, high)
    }
}

/// User-facing convenience methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and fine for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// `rand::prelude` re-exports, so `use rand::prelude::*` keeps working.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
            let f = r.gen_range(2.0f32..6.0);
            assert!((2.0..6.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
