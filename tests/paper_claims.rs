//! The paper's headline claims, asserted end-to-end against the simulator
//! at reduced scale (shapes, not absolute numbers — see EXPERIMENTS.md
//! for the full figure reproductions).

use gpu_topk::datagen::{BucketKiller, Distribution, Increasing, Uniform};
use gpu_topk::simt::Device;
use gpu_topk::topk::bitonic::{bitonic_topk, BitonicConfig, OptLevel};
use gpu_topk::topk::{delegate, TopKAlgorithm, TopKRequest};
use gpu_topk::topk_costmodel::{self as costmodel, planner::Algorithm, ReductionProfile};

const N: usize = 1 << 20;

fn run(dev: &Device, alg: &TopKAlgorithm, data: &[f32], k: usize) -> f64 {
    let input = dev.upload(data);
    TopKRequest::largest(k)
        .with_alg(*alg)
        .run(dev, &input)
        .unwrap()
        .time
        .seconds()
}

/// §1/§6.2: bitonic top-k beats every other algorithm for k ≤ 256.
#[test]
fn bitonic_wins_for_small_k() {
    let data: Vec<f32> = Uniform.generate(N, 1);
    let dev = Device::titan_x();
    for k in [8usize, 32, 128, 256] {
        let bitonic = run(
            &dev,
            &TopKAlgorithm::Bitonic(BitonicConfig::default()),
            &data,
            k,
        );
        for alg in [
            TopKAlgorithm::Sort,
            TopKAlgorithm::PerThread,
            TopKAlgorithm::RadixSelect,
        ] {
            let other = run(&dev, &alg, &data, k);
            assert!(
                bitonic < other,
                "k={k}: bitonic {bitonic} should beat {} {other}",
                alg.name()
            );
        }
    }
}

/// §1: "up to 15x faster than sort" — at least several-fold at our scale.
#[test]
fn bitonic_is_many_times_faster_than_sort() {
    let data: Vec<f32> = Uniform.generate(N, 2);
    let dev = Device::titan_x();
    let bitonic = run(
        &dev,
        &TopKAlgorithm::Bitonic(BitonicConfig::default()),
        &data,
        8,
    );
    let sort = run(&dev, &TopKAlgorithm::Sort, &data, 8);
    assert!(
        sort > 5.0 * bitonic,
        "sort {sort} should be ≫ bitonic {bitonic}"
    );
}

/// §6.2: for large k, radix select overtakes bitonic (the crossover).
#[test]
fn radix_select_overtakes_at_large_k() {
    let data: Vec<u32> = Uniform.generate(N, 3);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let flipped = [512usize, 1024, 2048].iter().any(|&k| {
        let b = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
            .run(&dev, &input)
            .unwrap()
            .time
            .seconds();
        let r = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::RadixSelect)
            .run(&dev, &input)
            .unwrap()
            .time
            .seconds();
        r < b
    });
    assert!(flipped, "radix select never overtook bitonic up to k=2048");
}

/// §6.4: bitonic's time is identical across distributions — no adversarial
/// input exists for it.
#[test]
fn bitonic_is_distribution_robust() {
    let dev = Device::titan_x();
    let cfg = BitonicConfig::default();
    let times: Vec<f64> = [
        Uniform.generate(N, 4),
        Increasing.generate(N, 4),
        BucketKiller.generate(N, 4),
    ]
    .iter()
    .map(|d| {
        let input = dev.upload(d);
        bitonic_topk(&dev, &input, 32, cfg).unwrap().time.seconds()
    })
    .collect();
    assert!((times[0] - times[1]).abs() < 1e-12);
    assert!((times[0] - times[2]).abs() < 1e-12);
}

/// §6.4: the bucket killer drives radix select toward sort-like cost while
/// leaving bitonic unchanged.
#[test]
fn bucket_killer_hurts_radix_select_only() {
    let dev = Device::titan_x();
    let uni: Vec<f32> = Uniform.generate(N, 5);
    let bk: Vec<f32> = BucketKiller.generate(N, 5);
    let r_uni = run(&dev, &TopKAlgorithm::RadixSelect, &uni, 32);
    let r_bk = run(&dev, &TopKAlgorithm::RadixSelect, &bk, 32);
    assert!(r_bk > 1.4 * r_uni, "radix: bk {r_bk} vs uniform {r_uni}");

    let b_uni = run(
        &dev,
        &TopKAlgorithm::Bitonic(BitonicConfig::default()),
        &uni,
        32,
    );
    let b_bk = run(
        &dev,
        &TopKAlgorithm::Bitonic(BitonicConfig::default()),
        &bk,
        32,
    );
    assert!((b_uni - b_bk).abs() < 1e-12);
}

/// §4.3: the optimization ladder strictly improves end-to-end time.
#[test]
fn optimization_ladder_is_monotone() {
    let data: Vec<f32> = Uniform.generate(N, 6);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let times: Vec<f64> = OptLevel::ladder()
        .iter()
        .map(|&opt| {
            bitonic_topk(&dev, &input, 32, BitonicConfig::at_level(opt))
                .unwrap()
                .time
                .seconds()
        })
        .collect();
    for w in times.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "ladder regressed: {times:?}");
    }
    assert!(
        times.last().unwrap() * 10.0 < times[0],
        "full ladder ≥10×: {times:?}"
    );
}

/// §4.3 discussion: bitonic top-k allocates ~n/8 extra device memory while
/// sort and the selection methods need a full extra buffer.
#[test]
fn memory_usage_claims() {
    let dev = Device::titan_x();
    let n = 1 << 18;
    let data: Vec<f32> = Uniform.generate(n, 7);
    let input = dev.upload(&data);
    let input_bytes = n * 4;

    dev.reset_memory_highwater();
    let _ = TopKRequest::largest(32)
        .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
        .run(&dev, &input)
        .unwrap();
    let bitonic_extra = dev.memory_highwater().saturating_sub(input_bytes);

    dev.reset_memory_highwater();
    let _ = TopKRequest::largest(32)
        .with_alg(TopKAlgorithm::Sort)
        .run(&dev, &input)
        .unwrap();
    let sort_extra = dev.memory_highwater().saturating_sub(input_bytes);

    assert!(
        bitonic_extra <= input_bytes / 4,
        "bitonic extra {bitonic_extra} should be ≤ n/4 bytes"
    );
    assert!(
        sort_extra >= input_bytes,
        "sort needs ≥ a full extra buffer, got {sort_extra}"
    );
    assert!(bitonic_extra * 4 < sort_extra);
}

/// §7: the planner's predictions agree with the simulator's measured
/// winner across the k sweep.
#[test]
fn cost_model_planner_agrees_with_simulation() {
    let data: Vec<u32> = Uniform.generate(N, 8);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    // the planner prices the *warm* delegate query (the index build is
    // amortized across a serving window), so warm the index up front
    delegate::warm_delegate_index(&dev, &input, delegate::DelegateConfig::default()).unwrap();
    for k in [8usize, 64, 256, 2048] {
        let choice = costmodel::recommend(dev.spec(), N, k, 4, &ReductionProfile::UniformInts);
        let time = |alg: TopKAlgorithm| {
            TopKRequest::largest(k)
                .with_alg(alg)
                .run(&dev, &input)
                .unwrap()
                .time
                .seconds()
        };
        let times = [
            (
                Algorithm::BitonicTopK,
                time(TopKAlgorithm::Bitonic(BitonicConfig::default())),
            ),
            (Algorithm::RadixSelect, time(TopKAlgorithm::RadixSelect)),
            (
                Algorithm::DelegateSelect,
                time(TopKAlgorithm::DelegateSelect(
                    delegate::DelegateConfig::default(),
                )),
            ),
        ];
        let best = times.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        let picked = times
            .iter()
            .find(|&&(a, _)| a == choice.algorithm)
            .expect("planner picked an algorithm we simulate")
            .1;
        // allow disagreement only in the near-tie band (the paper's models
        // "underestimate" but preserve the cutoff)
        assert!(
            picked <= best * 1.25,
            "k={k}: planner picked {:?} at {picked}s but the simulated best is {best}s ({times:?})",
            choice.algorithm
        );
    }
}

/// §6.2: per-thread top-k cannot launch for k ≥ 512 (f32) but bitonic and
/// the selection methods still can.
#[test]
fn per_thread_fails_where_others_continue() {
    let data: Vec<f32> = Uniform.generate(1 << 16, 9);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    assert!(TopKRequest::largest(512)
        .with_alg(TopKAlgorithm::PerThread)
        .run(&dev, &input)
        .is_err());
    assert!(TopKRequest::largest(512)
        .with_alg(TopKAlgorithm::Bitonic(BitonicConfig::default()))
        .run(&dev, &input)
        .is_ok());
    assert!(TopKRequest::largest(512)
        .with_alg(TopKAlgorithm::RadixSelect)
        .run(&dev, &input)
        .is_ok());
}
