//! Property-based tests: randomized inputs drive every algorithm against
//! the sort oracle, and the core data-structure invariants of the bitonic
//! decomposition are checked on arbitrary data.

use gpu_topk::datagen::{
    reference_topk, BucketKiller, Clustered, Decreasing, Distribution, Increasing, Kv, Normal,
    SortKey, TopKItem, Uniform,
};
use gpu_topk::simt::Device;
use gpu_topk::sortnet::{
    self, bitonic_topk_host, is_bitonic, local_sort, merge_halve, next_pow2, rebuild,
    runs_sorted_alternating,
};
use gpu_topk::topk::bitonic::{bitonic_topk, BitonicConfig, OptLevel};
use gpu_topk::topk::delegate::DelegateConfig;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};
use gpu_topk::topk_cpu::{CpuBitonic, CpuTopK, HandPq, StlPq};
use proptest::prelude::*;

fn keybits<T: TopKItem>(v: &[T]) -> Vec<T::KeyBits> {
    v.iter().map(|x| x.key_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every GPU algorithm returns exactly the oracle's keys, for random
    /// lengths, k, and arbitrary bit patterns (including ±0, ±∞, NaN).
    #[test]
    fn gpu_algorithms_match_oracle(
        bits in prop::collection::vec(any::<u32>(), 1..3000),
        k in 1usize..300,
    ) {
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_sort_bits(b)).collect();
        let expect = keybits(&reference_topk(&data, k.min(data.len())));
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        for alg in [
            TopKAlgorithm::Sort,
            TopKAlgorithm::RadixSelect,
            TopKAlgorithm::BucketSelect,
            TopKAlgorithm::Bitonic(BitonicConfig::default()),
        ] {
            let r = TopKRequest::largest(k).with_alg(alg).run(&dev, &input).unwrap();
            prop_assert_eq!(keybits(&r.items), expect.clone(), "{}", alg.name());
        }
    }

    /// CPU implementations against the oracle under the same regime.
    #[test]
    fn cpu_algorithms_match_oracle(
        data in prop::collection::vec(any::<u32>(), 1..5000),
        k in 1usize..200,
        threads in 1usize..6,
    ) {
        let expect = reference_topk(&data, k.min(data.len()));
        for alg in [&StlPq as &dyn CpuTopK<u32>, &HandPq, &CpuBitonic::default()] {
            let got = alg.topk(&data, k, threads);
            prop_assert_eq!(&got, &expect, "{}", alg.name());
        }
    }

    /// The merge operator's central invariant (the paper's key insight):
    /// after local sort, the pairwise max of each 2k window (a) contains
    /// that window's top-k as a multiset and (b) is a bitonic sequence.
    #[test]
    fn merge_invariant_holds(
        seed in prop::collection::vec(any::<u32>(), 64..64+512),
        k_log in 1u32..6,
    ) {
        let k = 1usize << k_log;
        let n = next_pow2(seed.len()).max(2 * k);
        let mut data = seed;
        data.resize(n, 0);
        local_sort(&mut data, k);
        prop_assert!(runs_sorted_alternating(&data, k));
        let mut out = vec![0u32; n / 2];
        merge_halve(&data, k, &mut out);
        for w in 0..n / (2 * k) {
            let window = &data[2 * k * w..2 * k * (w + 1)];
            let merged = &out[k * w..k * (w + 1)];
            prop_assert!(is_bitonic(merged));
            let mut top: Vec<u32> = window.to_vec();
            top.sort_unstable_by(|a, b| b.cmp(a));
            top.truncate(k);
            let mut got: Vec<u32> = merged.to_vec();
            got.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(got, top);
        }
        // and rebuild restores sorted alternating runs
        rebuild(&mut out, k);
        prop_assert!(runs_sorted_alternating(&out, k));
    }

    /// The host bitonic top-k equals the oracle for arbitrary n/k.
    #[test]
    fn host_bitonic_matches_oracle(
        data in prop::collection::vec(any::<i64>(), 1..2000),
        k in 1usize..128,
    ) {
        let got = bitonic_topk_host(&data, k);
        prop_assert_eq!(got, reference_topk(&data, k.min(data.len())));
    }

    /// Every optimization level is result-equivalent (the optimizations
    /// must never change what is computed).
    #[test]
    fn opt_levels_result_equivalent(
        data in prop::collection::vec(any::<u32>(), 100..2048),
        k in 1usize..64,
        lvl in 0usize..7,
    ) {
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let opt = OptLevel::ladder()[lvl];
        let r = bitonic_topk(&dev, &input, k, BitonicConfig::at_level(opt)).unwrap();
        prop_assert_eq!(
            keybits(&r.items),
            keybits(&reference_topk(&data, k.min(data.len())))
        );
    }

    /// Delegate select is key-signature-equal to the bitonic oracle on
    /// all six benchmark distributions, over random n, k, and subrange
    /// granularities — including shapes where the delegate set is
    /// smaller than k, so phases 2–3 collapse to a full refine.
    #[test]
    fn delegate_select_matches_bitonic_on_all_distributions(
        dist in 0usize..6,
        n in 256usize..6000,
        k in 1usize..300,
        sub_log in 5u32..12,
        seed in any::<u64>(),
    ) {
        let gens: [Box<dyn Distribution<f32>>; 6] = [
            Box::new(Uniform),
            Box::new(Normal),
            Box::new(Increasing),
            Box::new(Decreasing),
            Box::new(BucketKiller),
            Box::new(Clustered),
        ];
        let data: Vec<f32> = gens[dist].generate(n, seed);
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let cfg = DelegateConfig { subrange: 1 << sub_log, ..DelegateConfig::default() };
        let got = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::DelegateSelect(cfg))
            .run(&dev, &input)
            .unwrap();
        let oracle = bitonic_topk(&dev, &input, k, BitonicConfig::default()).unwrap();
        prop_assert_eq!(keybits(&got.items), keybits(&oracle.items));
    }

    /// Adversarial skew for the delegate decomposition: heavily
    /// duplicated keys make every subrange's delegate tie at (or above)
    /// the threshold, so every subrange contributes — and the winners'
    /// full (key, row-id) signature must still match the bitonic oracle
    /// exactly, tie-breaks included.
    #[test]
    fn delegate_select_ties_match_bitonic_when_every_subrange_contributes(
        n in 512usize..4096,
        k in 1usize..128,
        modulus in 1u32..8,
    ) {
        let data: Vec<Kv<u32>> = (0..n as u32).map(|i| Kv::new(i % modulus, i)).collect();
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let cfg = DelegateConfig { subrange: 32, ..DelegateConfig::default() };
        let got = TopKRequest::largest(k)
            .with_alg(TopKAlgorithm::DelegateSelect(cfg))
            .run(&dev, &input)
            .unwrap();
        let oracle = bitonic_topk(&dev, &input, k, BitonicConfig::default()).unwrap();
        let sig = |v: &[Kv<u32>]| v.iter().map(|kv| (kv.key, kv.value)).collect::<Vec<_>>();
        prop_assert_eq!(sig(&got.items), sig(&oracle.items));
    }

    /// Padding maps are injective and in-bounds for arbitrary shapes.
    #[test]
    fn pad_map_injective(banks in 1usize..64, n in 1usize..4096) {
        let p = sortnet::PadMap::new(banks, true);
        let mut phys: Vec<usize> = (0..n).map(|i| p.index(i)).collect();
        prop_assert!(*phys.last().unwrap() < p.padded_len(n));
        phys.sort_unstable();
        phys.dedup();
        prop_assert_eq!(phys.len(), n);
    }

    /// Payload integrity under the full bitonic pipeline: with distinct
    /// keys, winning values are exactly the oracle's.
    #[test]
    fn payloads_survive_bitonic(perm_seed in any::<u64>(), k in 1usize..32) {
        // a permutation of distinct keys
        let n = 1024usize;
        let mut keys: Vec<u32> = (0..n as u32).collect();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        let data: Vec<Kv<u32>> = keys.iter().enumerate().map(|(i, &kk)| Kv::new(kk, i as u32)).collect();
        let dev = Device::titan_x();
        let input = dev.upload(&data);
        let r = bitonic_topk(&dev, &input, k, BitonicConfig::default()).unwrap();
        for (rank, item) in r.items.iter().enumerate() {
            prop_assert_eq!(item.key, (n - 1 - rank) as u32);
            prop_assert_eq!(data[item.value as usize].key, item.key, "payload must point at its key");
        }
    }
}
