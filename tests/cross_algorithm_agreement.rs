//! Cross-crate agreement: every implementation in the workspace — five
//! simulated GPU algorithms, three CPU algorithms, and the host reference
//! operators — must return the same top-k keys for the same input.

use gpu_topk::datagen::{
    reference_topk, BucketKiller, Decreasing, Distribution, GenKey, Increasing, Kv, TopKItem,
    Uniform,
};
use gpu_topk::simt::Device;
use gpu_topk::sortnet::bitonic_topk_host;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};
use gpu_topk::topk_cpu::{CpuBitonic, CpuTopK, HandPq, StlPq};

fn gpu_algorithms() -> Vec<TopKAlgorithm> {
    TopKAlgorithm::all()
}

fn check_all<K: GenKey>(dist: &dyn Distribution<K>, n: usize, k: usize, seed: u64) {
    let data = dist.generate(n, seed);
    let expect: Vec<K::Bits> = reference_topk(&data, k)
        .iter()
        .map(|x| x.sort_bits())
        .collect();

    let dev = Device::titan_x();
    let input = dev.upload(&data);
    for alg in gpu_algorithms() {
        match TopKRequest::largest(k).with_alg(alg).run(&dev, &input) {
            Ok(r) => {
                let got: Vec<K::Bits> = r.items.iter().map(|x| x.key_bits()).collect();
                assert_eq!(
                    got,
                    expect,
                    "GPU {} n={n} k={k} {}",
                    alg.name(),
                    dist.name()
                );
            }
            Err(e) => panic!("GPU {} failed at n={n} k={k}: {e}", alg.name()),
        }
    }

    for cpu in [&StlPq as &dyn CpuTopK<K>, &HandPq, &CpuBitonic::default()] {
        let got: Vec<K::Bits> = cpu
            .topk(&data, k, 4)
            .iter()
            .map(|x| x.sort_bits())
            .collect();
        assert_eq!(
            got,
            expect,
            "CPU {} n={n} k={k} {}",
            cpu.name(),
            dist.name()
        );
    }

    let got: Vec<K::Bits> = bitonic_topk_host(&data, k)
        .iter()
        .map(|x| x.sort_bits())
        .collect();
    assert_eq!(got, expect, "host bitonic n={n} k={k}");
}

#[test]
fn all_agree_uniform_f32() {
    for k in [1usize, 8, 32, 128] {
        check_all::<f32>(&Uniform, 1 << 13, k, 1000 + k as u64);
    }
}

#[test]
fn all_agree_uniform_u32() {
    for k in [1usize, 16, 64] {
        check_all::<u32>(&Uniform, 1 << 13, k, 2000 + k as u64);
    }
}

#[test]
fn all_agree_uniform_f64() {
    // per-thread shared-heap k-limit for doubles is 128 (tested in-crate);
    // keep k small enough for every algorithm to run
    for k in [1usize, 8, 64] {
        check_all::<f64>(&Uniform, 1 << 12, k, 3000 + k as u64);
    }
}

#[test]
fn all_agree_sorted_inputs() {
    check_all::<f32>(&Increasing, 1 << 13, 32, 4000);
    check_all::<f32>(&Decreasing, 1 << 13, 32, 4001);
    check_all::<u32>(&Increasing, 1 << 12, 8, 4002);
}

#[test]
fn all_agree_bucket_killer() {
    check_all::<f32>(&BucketKiller, 1 << 13, 32, 5000);
}

#[test]
fn all_agree_awkward_sizes() {
    // non-power-of-two, k near n, tiny inputs
    for (n, k) in [(5000usize, 7usize), (1023, 17), (129, 128), (37, 5)] {
        check_all::<f32>(&Uniform, n, k, (n * 31 + k) as u64);
    }
}

#[test]
fn kv_payload_winners_match_across_gpu_algorithms() {
    // distinct keys → winning (key,value) pairs are fully determined
    let data: Vec<Kv<u32>> = {
        let keys: Vec<u32> = Uniform.generate(1 << 12, 6000);
        let mut seen = std::collections::HashSet::new();
        keys.into_iter()
            .enumerate()
            .filter(|(_, k)| seen.insert(*k))
            .map(|(i, k)| Kv::new(k, i as u32))
            .collect()
    };
    let mut expect = data.clone();
    expect.sort_unstable_by_key(|kv| std::cmp::Reverse(kv.key));
    expect.truncate(16);

    let dev = Device::titan_x();
    let input = dev.upload(&data);
    for alg in gpu_algorithms() {
        let r = TopKRequest::largest(16)
            .with_alg(alg)
            .run(&dev, &input)
            .unwrap();
        assert_eq!(r.items.len(), 16, "{}", alg.name());
        for (g, e) in r.items.iter().zip(expect.iter()) {
            assert_eq!(g.key, e.key, "{}", alg.name());
            assert_eq!(g.value, e.value, "{}: payload lost", alg.name());
        }
    }
}

#[test]
fn results_are_descending_for_every_algorithm() {
    let data: Vec<f32> = Uniform.generate(1 << 12, 7000);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    for alg in gpu_algorithms() {
        let r = TopKRequest::largest(100)
            .with_alg(alg)
            .run(&dev, &input)
            .unwrap();
        assert!(
            r.items
                .windows(2)
                .all(|w| w[0].key_bits() >= w[1].key_bits()),
            "{} output not descending",
            alg.name()
        );
    }
}
