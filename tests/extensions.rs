//! Integration tests for the extension features (chunked, batched,
//! hybrid, smallest-k, auto-planner, SQL) — cross-checking them against
//! each other and the core algorithms.

use gpu_topk::datagen::{reference_topk, Distribution, Uniform};
use gpu_topk::qdb;
use gpu_topk::simt::{Device, DeviceSpec};
use gpu_topk::topk::batched::batched_bitonic_topk;
use gpu_topk::topk::bitonic::{bitonic_topk, BitonicConfig};
use gpu_topk::topk::chunked::{chunked_bitonic_topk, ChunkedConfig};
use gpu_topk::topk::hybrid::select_then_bitonic;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};
use gpu_topk::topk_costmodel::ReductionProfile;

#[test]
fn chunked_equals_in_core_result() {
    let data: Vec<f32> = Uniform.generate(1 << 16, 900);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let in_core = bitonic_topk(&dev, &input, 40, BitonicConfig::default()).unwrap();
    let chunked = chunked_bitonic_topk(
        &data,
        40,
        &dev,
        ChunkedConfig {
            chunk_elems: Some(1 << 13),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(in_core.items, chunked.items);
    // streaming costs strictly more wall time than on-device compute alone
    assert!(chunked.wall_time.seconds() > in_core.time.seconds());
}

#[test]
fn batched_single_row_equals_plain_topk() {
    let data: Vec<f32> = Uniform.generate(2048, 901);
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let plain = bitonic_topk(&dev, &input, 16, BitonicConfig::default()).unwrap();
    let batched = batched_bitonic_topk(&dev, &input, 1, 2048, 16).unwrap();
    assert_eq!(batched.rows.len(), 1);
    assert_eq!(batched.rows[0], plain.items);
}

#[test]
fn hybrid_and_pure_agree_on_all_key_types() {
    let dev = Device::titan_x();
    let f: Vec<f32> = Uniform.generate(1 << 14, 902);
    let u: Vec<u64> = Uniform.generate(1 << 13, 903);
    let fi = dev.upload(&f);
    let ui = dev.upload(&u);
    let hf = select_then_bitonic(&dev, &fi, 100).unwrap();
    assert_eq!(hf.items, reference_topk(&f, 100));
    let hu = select_then_bitonic(&dev, &ui, 100).unwrap();
    assert_eq!(hu.items, reference_topk(&u, 100));
}

#[test]
fn smallest_k_is_reverse_of_largest_k_on_distinct_keys() {
    let data: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let alg = TopKAlgorithm::Bitonic(BitonicConfig::default());
    let largest = TopKRequest::largest(4096)
        .with_alg(alg)
        .run(&dev, &input)
        .unwrap()
        .items;
    let smallest = TopKRequest::smallest(4096)
        .with_alg(alg)
        .run(&dev, &input)
        .unwrap()
        .items;
    let mut rev = largest.clone();
    rev.reverse();
    assert_eq!(smallest, rev);
}

#[test]
fn auto_planner_result_is_always_correct() {
    let dev = Device::titan_x();
    for (n, k) in [(1usize << 14, 8usize), (1 << 16, 512), (1 << 14, 2048)] {
        let data: Vec<u32> = Uniform.generate(n, (n + k) as u64);
        let input = dev.upload(&data);
        let r = gpu_topk::auto::auto_topk(&dev, &input, k, &ReductionProfile::UniformInts).unwrap();
        assert_eq!(r.result.items, reference_topk(&data, k), "n={n} k={k}");
    }
}

#[test]
fn sql_front_end_composes_with_explain() {
    let host = gpu_topk::datagen::twitter::TweetTable::generate(30_000, 904);
    let dev = Device::titan_x();
    let table = qdb::GpuTweetTable::upload(&dev, &host);
    let stats = qdb::TableStats::gather(&table);
    let cutoff = host.time_cutoff_for_selectivity(0.35);

    let q = qdb::parse_sql(&format!(
        "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 40"
    ))
    .unwrap();
    let op = q.filter.clone().unwrap();
    let plan = qdb::explain_filtered_topk(dev.spec(), &table, &stats, &op, q.limit);

    // run the plan's choice and the runner-up: the choice must not lose
    let chosen = qdb::execute_sql(&dev, &table, &q, plan.chosen()).unwrap();
    let runner_up = qdb::execute_sql(&dev, &table, &q, plan.costs[1].strategy).unwrap();
    assert_eq!(chosen.ids, runner_up.ids, "results must agree");
    assert!(chosen.kernel_time.seconds() <= runner_up.kernel_time.seconds() * 1.05);
}

#[test]
fn serving_layer_coalesces_and_matches_serial() {
    let host = gpu_topk::datagen::twitter::TweetTable::generate(16_384, 906);
    let dev = Device::titan_x();
    let table = qdb::GpuTweetTable::upload(&dev, &host);

    let sqls: Vec<String> = (0..16)
        .map(|i| {
            let cutoff = host.time_cutoff_for_selectivity(0.03 + 0.01 * (i % 8) as f64);
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT {}",
                4 + 3 * (i % 5)
            )
        })
        .collect();

    let mut server = qdb::Server::new(&dev, &table, qdb::ServerConfig::default());
    for sql in &sqls {
        server.submit(sql, qdb::SubmitOptions::default()).unwrap();
    }
    let report = server.drain();

    assert_eq!(report.queries.len(), sqls.len());
    assert!(
        report.speedup() > 1.5,
        "16 concurrent small queries should overlap, got {:.2}x",
        report.speedup()
    );
    for (sql, served) in sqls.iter().zip(&report.queries) {
        let q = qdb::parse_sql(sql).unwrap();
        let serial = qdb::execute_sql(&dev, &table, &q, qdb::Strategy::StageBitonic).unwrap();
        let keys = |ids: &[u32]| -> Vec<u32> {
            ids.iter()
                .map(|&id| host.retweet_count[id as usize])
                .collect()
        };
        assert_eq!(
            keys(&served.result.ids),
            keys(&serial.ids),
            "{sql} must match serial execution"
        );
        assert!(served.coalesced, "{sql} should have joined the batch");
    }
    // the drain's trace is loadable multi-stream chrome JSON
    assert!(report.chrome_trace().starts_with('['));
    assert!(report.chrome_trace().contains("thread_name"));
}

#[test]
fn chunked_respects_tiny_devices_end_to_end() {
    // a 256 KiB device streaming a 4 MiB dataset
    let spec = DeviceSpec {
        global_mem_bytes: 256 * 1024,
        ..DeviceSpec::titan_x_maxwell()
    };
    let dev = Device::new(spec);
    let data: Vec<f32> = Uniform.generate(1 << 20, 905);
    let r = chunked_bitonic_topk(&data, 64, &dev, ChunkedConfig::default()).unwrap();
    assert!(r.chunks >= 16, "chunks={}", r.chunks);
    assert_eq!(r.items, reference_topk(&data, 64));
    // at no point may allocations have exceeded the device capacity
    assert!(dev.memory_highwater() <= 256 * 1024);
}

#[test]
fn batched_kv_payloads_roundtrip() {
    use gpu_topk::datagen::Kv;
    let rows = 16;
    let cols = 256;
    let data: Vec<Kv<f32>> = (0..rows * cols)
        .map(|i| Kv::new(((i * 31) % 1009) as f32, i as u32))
        .collect();
    let dev = Device::titan_x();
    let input = dev.upload(&data);
    let r = batched_bitonic_topk(&dev, &input, rows, cols, 4).unwrap();
    for (row_i, winners) in r.rows.iter().enumerate() {
        for w in winners {
            // every winner's payload must point back into its own row
            let idx = w.value as usize;
            assert!(
                idx / cols == row_i,
                "row {row_i} got payload from row {}",
                idx / cols
            );
            assert_eq!(data[idx].key, w.key);
        }
    }
}
