#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # gpu-topk
//!
//! A from-scratch reproduction of *Efficient Top-K Query Processing on
//! Massively Parallel Hardware* (SIGMOD 2018): GPU top-k algorithms —
//! including the paper's novel **bitonic top-k** — running on a
//! warp-synchronous SIMT simulator, plus CPU baselines, the Section 7
//! cost models, and a MapD-style columnar engine for the integration
//! experiments.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! namespace. See `README.md` for the architecture map and
//! `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_topk::simt::Device;
//! use gpu_topk::topk::TopKRequest;
//!
//! let dev = Device::titan_x();
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
//! let input = dev.upload(&data);
//!
//! let result = TopKRequest::largest(5).run(&dev, &input).expect("top-k");
//!
//! assert_eq!(result.items.len(), 5);
//! println!("top-5 = {:?} in {} (simulated)", result.items, result.time);
//! ```

pub mod auto;

pub use datagen;
pub use qdb;
pub use simt;
pub use sortnet;
pub use topk;
pub use topk_costmodel;
pub use topk_cpu;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Resolves where a report-writing example should put its JSON artifact.
///
/// Every artifact-writing example (`quickstart`, `concurrent_serving`,
/// `sanitize_sweep`, …) uses the same contract, so CI and humans can
/// redirect outputs without editing code:
///
/// 1. an explicit path passed as the example's first CLI argument wins;
/// 2. else `$GPU_TOPK_OUT_DIR/<default_name>` when that variable is set
///    (the directory is created if missing);
/// 3. else the system temp directory + `<default_name>`.
pub fn artifact_path(default_name: &str) -> std::path::PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return std::path::PathBuf::from(arg);
    }
    match std::env::var_os("GPU_TOPK_OUT_DIR") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).expect("create $GPU_TOPK_OUT_DIR");
            dir.join(default_name)
        }
        None => std::env::temp_dir().join(default_name),
    }
}
