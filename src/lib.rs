#![warn(missing_docs)]
//! # gpu-topk
//!
//! A from-scratch reproduction of *Efficient Top-K Query Processing on
//! Massively Parallel Hardware* (SIGMOD 2018): GPU top-k algorithms —
//! including the paper's novel **bitonic top-k** — running on a
//! warp-synchronous SIMT simulator, plus CPU baselines, the Section 7
//! cost models, and a MapD-style columnar engine for the integration
//! experiments.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! namespace. See `README.md` for the architecture map and
//! `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_topk::simt::Device;
//! use gpu_topk::topk::TopKRequest;
//!
//! let dev = Device::titan_x();
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
//! let input = dev.upload(&data);
//!
//! let result = TopKRequest::largest(5).run(&dev, &input).expect("top-k");
//!
//! assert_eq!(result.items.len(), 5);
//! println!("top-5 = {:?} in {} (simulated)", result.items, result.time);
//! ```

pub mod auto;

pub use datagen;
pub use qdb;
pub use simt;
pub use sortnet;
pub use topk;
pub use topk_costmodel;
pub use topk_cpu;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
