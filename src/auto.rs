//! Planner-driven top-k: the Section 7 use case, wired end-to-end.
//!
//! A query optimizer doesn't know which top-k implementation wins for a
//! given `(n, k, item width, distribution)`; the paper's closing argument
//! is that its cost models are accurate enough to choose. [`auto_topk`]
//! does exactly that: consult the analytic models, then run the chosen
//! algorithm on the simulated device.

use datagen::TopKItem;
use simt::{Device, GpuBuffer};
use topk::bitonic::BitonicConfig;
use topk::delegate::DelegateConfig;
use topk::{TopKAlgorithm, TopKError, TopKRequest, TopKResult};
use topk_costmodel::planner::Algorithm;
use topk_costmodel::{recommend, recommend_full, RankedAlgorithm, ReductionProfile};

/// The auto-planned result: what ran, what the model predicted, what the
/// simulator measured.
#[derive(Debug, Clone)]
pub struct AutoResult<T> {
    /// The underlying top-k result.
    pub result: TopKResult<T>,
    /// Which algorithm the planner picked.
    pub chosen: TopKAlgorithm,
    /// The model's predicted seconds for the chosen algorithm.
    pub predicted_seconds: f64,
    /// The planner's full per-algorithm price list, cheapest first
    /// (`predicted_seconds = None` means the model says it cannot launch
    /// at this configuration).
    pub predictions: Vec<RankedAlgorithm>,
}

/// Top-k with the algorithm chosen by the Section 7 cost models.
///
/// `profile` describes the key distribution's radix behaviour; use
/// [`ReductionProfile::UniformFloats`] when unknown.
pub fn auto_topk<T: TopKItem>(
    dev: &Device,
    input: &GpuBuffer<T>,
    k: usize,
    profile: &ReductionProfile,
) -> Result<AutoResult<T>, TopKError> {
    let choice = recommend(dev.spec(), input.len(), k, T::SIZE_BYTES, profile);
    let chosen = match choice.algorithm {
        Algorithm::BitonicTopK => TopKAlgorithm::Bitonic(BitonicConfig::default()),
        Algorithm::RadixSelect => TopKAlgorithm::RadixSelect,
        Algorithm::DelegateSelect => TopKAlgorithm::DelegateSelect(DelegateConfig::default()),
    };
    let result = TopKRequest::largest(k).with_alg(chosen).run(dev, input)?;
    Ok(AutoResult {
        result,
        chosen,
        predicted_seconds: choice.predicted_seconds,
        predictions: recommend_full(dev.spec(), input.len(), k, T::SIZE_BYTES, profile),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{reference_topk, Distribution, Uniform};

    #[test]
    fn auto_picks_bitonic_for_small_k() {
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 16, 1);
        let input = dev.upload(&data);
        let r = auto_topk(&dev, &input, 32, &ReductionProfile::UniformFloats).unwrap();
        assert!(matches!(r.chosen, TopKAlgorithm::Bitonic(_)));
        assert_eq!(r.result.items, reference_topk(&data, 32));
        assert!(r.predicted_seconds > 0.0);
        // the full price list comes back, cheapest first, and its winner
        // agrees with the two-way recommendation
        assert_eq!(r.predictions.len(), 6);
        assert!(matches!(
            r.predictions[0].algorithm,
            topk_costmodel::FullAlgorithm::BitonicTopK
        ));
        let priced: Vec<f64> = r
            .predictions
            .iter()
            .filter_map(|p| p.predicted_seconds)
            .collect();
        assert!(
            priced.windows(2).all(|w| w[0] <= w[1]),
            "sorted cheapest-first"
        );
    }

    #[test]
    fn auto_picks_delegate_for_small_k_large_n() {
        // past the delegate break-even (k ≤ 64, n ≥ 2^20) the planner
        // must route to the delegate decomposition — and the run must
        // still match the oracle (cold path: builds the index inline)
        let dev = Device::titan_x();
        let data: Vec<f32> = Uniform.generate(1 << 20, 9);
        let input = dev.upload(&data);
        let r = auto_topk(&dev, &input, 64, &ReductionProfile::UniformFloats).unwrap();
        assert!(matches!(r.chosen, TopKAlgorithm::DelegateSelect(_)));
        assert_eq!(r.result.items, reference_topk(&data, 64));
        assert!(matches!(
            r.predictions[0].algorithm,
            topk_costmodel::FullAlgorithm::DelegateSelect
        ));
    }

    #[test]
    fn auto_picks_radix_for_huge_k() {
        // the crossover is n-dependent: at small n, launch overheads favor
        // bitonic even for large k, so test at a bandwidth-bound size
        let dev = Device::titan_x();
        let data: Vec<u32> = Uniform.generate(1 << 22, 2);
        let input = dev.upload(&data);
        let r = auto_topk(&dev, &input, 4096, &ReductionProfile::UniformInts).unwrap();
        assert!(matches!(r.chosen, TopKAlgorithm::RadixSelect));
        let got: Vec<u32> = r.result.items.clone();
        assert_eq!(got, reference_topk(&data, 4096));
    }
}
