//! Static lint sweep: runs every `TopKAlgorithm` variant (plus the
//! batched row-wise kernel and the paper's qdb queries under every
//! strategy) with `simt::lint` capture enabled, and
//!
//! 1. asserts every launch plan is lint-clean (or explicitly waived),
//! 2. cross-checks every static prediction against the replay's
//!    measured counters — a drift becomes a `spec.mismatch` finding,
//! 3. writes all per-launch reports as JSON — the artifact the CI
//!    lint job uploads.
//!
//! ```sh
//! cargo run --release --example lint_sweep [-- out.json]
//! ```
//!
//! The report lands at the first CLI argument if given, else
//! `$GPU_TOPK_OUT_DIR/lint_report.json`, else the temp directory.
//! Exits non-zero if any launch plan has a finding.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::datagen::{BucketKiller, Distribution, Increasing, Uniform};
use gpu_topk::qdb::{execute_sql, parse_sql, GpuTweetTable, Strategy};
use gpu_topk::simt::lint::{cross_check, reports_to_json};
use gpu_topk::simt::{Device, LintReport};
use gpu_topk::topk::batched::batched_bitonic_topk;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};

/// Drains a device's lint reports, pairing each with its launch to run
/// the static-vs-dynamic cross-check; a disagreement is appended to the
/// report as a `spec.mismatch` finding so it fails the clean gate.
fn drain(dev: &Device, context: &str, all: &mut Vec<LintReport>) -> usize {
    let log = dev.launch_log();
    let mut reports = dev.take_lint_reports();
    assert_eq!(
        log.len(),
        reports.len(),
        "{context}: every launch must produce exactly one lint report"
    );
    for (launch, report) in log.iter().zip(reports.iter_mut()) {
        if let Some(mismatch) = cross_check(report, &launch.stats) {
            report.findings.push(mismatch);
        }
    }
    let n = reports.len();
    all.extend(reports);
    n
}

fn main() {
    let out_path = gpu_topk::artifact_path("lint_report.json");
    let mut all: Vec<LintReport> = Vec::new();
    let mut launches = 0usize;

    // every algorithm x (n, k) x distribution
    type Gen = Box<dyn Fn(usize) -> Vec<f32>>;
    let dists: Vec<(&str, Gen)> = vec![
        ("uniform", Box::new(|n| Uniform.generate(n, 42))),
        ("sorted", Box::new(|n| Increasing.generate(n, 42))),
        ("bucket-killer", Box::new(|n| BucketKiller.generate(n, 42))),
    ];
    for alg in TopKAlgorithm::all() {
        for &(n, k) in &[(1usize << 14, 16usize), (1 << 16, 64), (3000, 8)] {
            for (dist, gen) in &dists {
                let dev = Device::titan_x();
                dev.enable_lint();
                let input = dev.upload(&gen(n));
                TopKRequest::largest(k)
                    .with_alg(alg)
                    .run(&dev, &input)
                    .unwrap_or_else(|e| panic!("{} n={n} k={k} {dist}: {e}", alg.name()));
                launches += drain(
                    &dev,
                    &format!("{} n={n} k={k} {dist}", alg.name()),
                    &mut all,
                );
            }
        }
    }

    // batched row-wise top-k
    {
        let dev = Device::titan_x();
        dev.enable_lint();
        let (rows, cols) = (32usize, 1000usize);
        let flat: Vec<f32> = Uniform.generate(rows * cols, 9);
        let input = dev.upload(&flat);
        batched_bitonic_topk(&dev, &input, rows, cols, 16).unwrap();
        launches += drain(&dev, "batched", &mut all);
    }

    // the paper's qdb query shapes under every strategy
    {
        let host = TweetTable::generate(20_000, 5);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let sqls = [
            format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
            "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".into(),
            "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 10".into(),
        ];
        for sql in &sqls {
            let q = parse_sql(sql).unwrap();
            for strat in Strategy::all() {
                let dev = Device::titan_x();
                dev.enable_lint();
                let table = GpuTweetTable::upload(&dev, &host);
                execute_sql(&dev, &table, &q, strat)
                    .unwrap_or_else(|e| panic!("{sql} via {}: {e}", strat.name()));
                launches += drain(&dev, &format!("{sql} via {}", strat.name()), &mut all);
            }
        }
    }

    let dirty: Vec<&LintReport> = all.iter().filter(|r| !r.is_clean()).collect();
    let json = reports_to_json(&all);
    std::fs::write(&out_path, &json).expect("write report");
    println!(
        "lint_sweep: {launches} launch plans analyzed, {} with findings -> {}",
        dirty.len(),
        out_path.display()
    );
    for rep in &dirty {
        print!("{}", rep.render());
    }
    if !dirty.is_empty() {
        std::process::exit(1);
    }
}
