//! Quickstart: run every top-k algorithm on the same data and compare
//! simulated GPU times against the memory-bandwidth floor.
//!
//! ```sh
//! cargo run --release --example quickstart [-- trace.json]
//! ```
//!
//! The trace artifact lands at the first CLI argument if given, else
//! `$GPU_TOPK_OUT_DIR/gpu_topk_trace.json`, else the temp directory.

use gpu_topk::datagen::{Distribution, Uniform};
use gpu_topk::simt::Device;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};

fn main() {
    let n = 1 << 20;
    let k = 32;
    println!("top-{k} of {n} uniform f32 keys on a simulated Titan X (Maxwell)\n");

    let data: Vec<f32> = Uniform.generate(n, 42);
    let dev = Device::titan_x();
    let input = dev.upload(&data);

    let floor = dev.spec().scan_floor_seconds(n * 4) * 1e6;
    println!("{:<16} {:>12}  notes", "algorithm", "time (µs)");
    println!(
        "{:<16} {:>12.1}  read the input once at peak bandwidth",
        "— floor —", floor
    );

    let mut best: Option<(String, f64)> = None;
    for alg in TopKAlgorithm::all() {
        match TopKRequest::largest(k).with_alg(alg).run(&dev, &input) {
            Ok(r) => {
                let us = r.time.micros();
                let note = format!(
                    "{} kernels, {:.1} MB global traffic",
                    r.reports.len(),
                    r.global_bytes() as f64 / 1e6
                );
                println!("{:<16} {:>12.1}  {note}", alg.name(), us);
                if best.as_ref().is_none_or(|(_, b)| us < *b) {
                    best = Some((alg.name().to_string(), us));
                }
            }
            Err(e) => println!("{:<16} {:>12}  {e}", alg.name(), "—"),
        }
    }

    let (name, us) = best.expect("at least one algorithm ran");
    println!(
        "\nfastest: {name} at {us:.1} µs ({:.2}× the bandwidth floor)",
        us / floor
    );

    // verify against a host-side sort
    let reference = gpu_topk::datagen::reference_topk(&data, k);
    let bitonic = TopKRequest::largest(k).run(&dev, &input).unwrap();
    assert_eq!(
        bitonic.items, reference,
        "results must match the sort oracle"
    );
    println!("result verified against host sort ✓");

    // dump the launch timeline for chrome://tracing / Perfetto
    let trace = gpu_topk::simt::chrome_trace(&bitonic.reports);
    let path = gpu_topk::artifact_path("gpu_topk_trace.json");
    std::fs::write(&path, trace).expect("write trace");
    println!(
        "kernel timeline written to {} (load it in chrome://tracing)",
        path.display()
    );
}
