//! Sanitizer sweep: runs every `TopKAlgorithm` variant (plus the batched
//! row-wise kernel and a concurrent qdb serving drain) under
//! `simt::sanitize` and writes the combined per-launch reports as JSON —
//! the artifact the CI sanitizer job uploads.
//!
//! ```sh
//! cargo run --release --example sanitize_sweep [-- out.json]
//! ```
//!
//! The report lands at the first CLI argument if given, else
//! `$GPU_TOPK_OUT_DIR/sanitizer_report.json`, else the temp directory.
//! Exits non-zero if any launch produces a finding.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::datagen::{BucketKiller, Distribution, Increasing, Uniform};
use gpu_topk::qdb::{GpuTweetTable, Server, ServerConfig, SubmitOptions};
use gpu_topk::simt::sanitize::reports_to_json;
use gpu_topk::simt::{Device, SanitizerReport};
use gpu_topk::topk::batched::batched_bitonic_topk;
use gpu_topk::topk::{TopKAlgorithm, TopKRequest};

fn main() {
    let out_path = gpu_topk::artifact_path("sanitizer_report.json");
    let mut all: Vec<SanitizerReport> = Vec::new();
    let mut launches = 0usize;

    // every algorithm x (n, k) x distribution
    type Gen = Box<dyn Fn(usize) -> Vec<f32>>;
    let dists: Vec<(&str, Gen)> = vec![
        ("uniform", Box::new(|n| Uniform.generate(n, 42))),
        ("sorted", Box::new(|n| Increasing.generate(n, 42))),
        ("bucket-killer", Box::new(|n| BucketKiller.generate(n, 42))),
    ];
    for alg in TopKAlgorithm::all() {
        for &(n, k) in &[(1usize << 14, 16usize), (1 << 16, 64), (3000, 8)] {
            for (dist, gen) in &dists {
                let dev = Device::titan_x();
                dev.enable_sanitizer();
                let input = dev.upload(&gen(n));
                TopKRequest::largest(k)
                    .with_alg(alg)
                    .run(&dev, &input)
                    .unwrap_or_else(|e| panic!("{} n={n} k={k} {dist}: {e}", alg.name()));
                let reports = dev.take_sanitizer_reports();
                launches += reports.len();
                all.extend(reports);
            }
        }
    }

    // batched row-wise top-k
    {
        let dev = Device::titan_x();
        dev.enable_sanitizer();
        let (rows, cols) = (32usize, 1000usize);
        let flat: Vec<f32> = Uniform.generate(rows * cols, 9);
        let input = dev.upload(&flat);
        batched_bitonic_topk(&dev, &input, rows, cols, 16).unwrap();
        let reports = dev.take_sanitizer_reports();
        launches += reports.len();
        all.extend(reports);
    }

    // concurrent qdb serving: streamed + coalesced-batched launches
    {
        let dev = Device::titan_x();
        dev.enable_sanitizer();
        let host = TweetTable::generate(20_000, 5);
        let table = GpuTweetTable::upload(&dev, &host);
        let cutoff = host.time_cutoff_for_selectivity(0.4);
        let mut server = Server::new(&dev, &table, ServerConfig::default());
        for k in [5usize, 10, 20, 40] {
            server
                .submit(&format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT {k}"
                ), SubmitOptions::default())
                .unwrap();
        }
        server
            .submit(
                "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 10",
                SubmitOptions::default(),
            )
            .unwrap();
        server.drain();
        let reports = dev.take_sanitizer_reports();
        launches += reports.len();
        all.extend(reports);
    }

    let dirty: Vec<&SanitizerReport> = all.iter().filter(|r| !r.is_clean()).collect();
    let json = reports_to_json(&all);
    std::fs::write(&out_path, &json).expect("write report");
    println!(
        "sanitize_sweep: {launches} launches, {} with findings -> {}",
        dirty.len(),
        out_path.display()
    );
    for rep in &dirty {
        print!("{}", rep.render());
    }
    if !dirty.is_empty() {
        std::process::exit(1);
    }
}
