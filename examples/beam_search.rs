//! Batched row-wise top-k — the TensorFlow/ArrayFire feature request the
//! paper's introduction cites, in its most common incarnation: beam
//! search over per-step logit vectors.
//!
//! Each decoding step scores `beams × vocab` candidates; the decoder
//! keeps the `beam_width` best per beam. One batched launch handles all
//! beams at once instead of `beams` tiny kernel launches.
//!
//! ```sh
//! cargo run --release --example beam_search
//! ```

use gpu_topk::datagen::Kv;
use gpu_topk::simt::Device;
use gpu_topk::topk::batched::batched_bitonic_topk;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let beams = 32;
    let vocab = 4096;
    let beam_width = 4;
    let steps = 5;
    let mut rng = SmallRng::seed_from_u64(2718);
    let dev = Device::titan_x();

    println!("beam search: {beams} beams × {vocab} vocab, width {beam_width}, {steps} steps\n");
    let mut total = gpu_topk::simt::SimTime::ZERO;

    for step in 0..steps {
        // fake logits: (score, token_id) per beam row
        let logits: Vec<Kv<f32>> = (0..beams * vocab)
            .map(|i| {
                Kv::new(
                    10.0 * rng.gen::<f32>() - 5.0 + if i % vocab < 50 { 3.0 } else { 0.0 },
                    (i % vocab) as u32,
                )
            })
            .collect();
        let input = dev.upload(&logits);
        let r =
            batched_bitonic_topk(&dev, &input, beams, vocab, beam_width).expect("batched top-k");
        total += r.time;

        if step == 0 {
            println!("step 0 expansions (first 4 beams):");
            for (b, row) in r.rows.iter().take(4).enumerate() {
                let toks: Vec<String> = row
                    .iter()
                    .map(|kv| format!("tok{}@{:+.2}", kv.value, kv.key))
                    .collect();
                println!("  beam {b}: {}", toks.join("  "));
            }
        }
        // sanity: each row's winners are descending and beam_width long
        for row in &r.rows {
            assert_eq!(row.len(), beam_width);
            assert!(row.windows(2).all(|w| w[0].key >= w[1].key));
        }
    }

    println!(
        "\n{steps} decode steps took {total} of simulated device time \
         ({:.1} µs per step for all {beams} beams)",
        total.micros() / steps as f64
    );
    println!("one batched launch per step — {beams}× fewer launches than per-beam top-k");
}
