//! Concurrent query serving end-to-end: submit a mixed batch of SQL
//! top-k queries, drain them through the stream/batching scheduler, and
//! write a multi-stream chrome trace of the drain.
//!
//! Run with `cargo run --example concurrent_serving [-- trace.json]`,
//! then load the printed JSON file in `chrome://tracing` (or
//! https://ui.perfetto.dev): one track per device stream, with the
//! coalesced batched top-k launch visible after the overlapped per-query
//! filters. The trace lands at the first CLI argument if given, else
//! `$GPU_TOPK_OUT_DIR/concurrent_serving_trace.json`, else the temp
//! directory.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::{GpuTweetTable, Server, ServerConfig, SubmitOptions};
use gpu_topk::simt::Device;

fn main() {
    let n = 1usize << 16;
    let host = TweetTable::generate(n, 77);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);

    let mut server = Server::new(&dev, &table, ServerConfig::default());

    // a mixed burst: coalescable Q1-shapes plus a ranking query, an
    // ascending (bottom-k) query, and a group-by
    let mut sqls: Vec<String> = (0..12)
        .map(|i| {
            let cutoff = host.time_cutoff_for_selectivity(0.01 + 0.004 * i as f64);
            format!(
                "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                 ORDER BY retweet_count DESC LIMIT {}",
                4 + 4 * (i % 4)
            )
        })
        .collect();
    sqls.push(
        "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 10".into(),
    );
    sqls.push("SELECT id FROM tweets WHERE lang='ja' ORDER BY retweet_count ASC LIMIT 5".into());
    sqls.push(
        "SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 8".into(),
    );

    println!("submitting {} queries…", sqls.len());
    for sql in &sqls {
        server.submit(sql, SubmitOptions::default()).expect("admit");
    }
    let report = server.drain();

    println!(
        "\ndrained {} queries in {} (serial would be {}; {:.2}x speedup, {:.0} queries/sec)",
        report.queries.len(),
        report.makespan,
        report.serial_time,
        report.speedup(),
        report.queries_per_sec
    );
    println!(
        "latency p50 {}  p95 {}  p99 {}\n",
        report.p50, report.p95, report.p99
    );
    for q in &report.queries {
        println!(
            "  #{:<2} {}{}  queued {}  exec {}  -> {} ids",
            q.ticket.0,
            if q.coalesced { "[batched] " } else { "" },
            &q.sql[..q.sql.len().min(68)],
            q.timing.queued,
            q.timing.exec,
            q.result.ids.len()
        );
    }

    let path = gpu_topk::artifact_path("concurrent_serving_trace.json");
    std::fs::write(&path, report.chrome_trace()).expect("write trace");
    println!(
        "\nwrote multi-stream chrome trace ({} bytes) to {}",
        report.chrome_trace().len(),
        path.display()
    );
}
