//! "Worst performing queries in a query log" (another of the paper's
//! motivating examples) — top-k on the **CPU** baselines, with real
//! wall-clock measurements contrasting heap-based methods against CPU
//! bitonic top-k on friendly and adversarial orderings (Section 6.7).
//!
//! ```sh
//! cargo run --release --example query_log_analysis
//! ```

use gpu_topk::datagen::Kv;
use gpu_topk::topk_cpu::{CpuBitonic, CpuTopK, HandPq, StlPq};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 2_000_000;
    let k = 10;
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let mut rng = SmallRng::seed_from_u64(99);

    // a query log: (latency_us, query_id); heavy tail of slow queries
    let mut log: Vec<Kv<u32>> = (0..n)
        .map(|id| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let latency = (800.0 * u.powf(-0.6)).min(3.0e8) as u32;
            Kv::new(latency, id as u32)
        })
        .collect();

    println!("{n} log records, {threads} threads, k = {k}\n");

    for (label, make_sorted) in [
        ("arrival order", false),
        ("latency-sorted (worst case)", true),
    ] {
        if make_sorted {
            // sorted ascending: every record displaces the heap minimum
            log.sort_unstable_by_key(|kv| kv.key);
        }
        println!("-- input in {label} --");
        for alg in [
            &StlPq as &dyn CpuTopK<Kv<u32>>,
            &HandPq,
            &CpuBitonic::default(),
        ] {
            let start = Instant::now();
            let worst = alg.topk(&log, k, threads);
            let elapsed = start.elapsed();
            println!(
                "{:<12} {:>9.2} ms   slowest query: id={} at {:.1} ms latency",
                alg.name(),
                elapsed.as_secs_f64() * 1e3,
                worst[0].value,
                worst[0].key as f64 / 1e3,
            );
        }
        println!();
    }

    let reference = {
        let mut v = log.clone();
        v.sort_unstable_by_key(|kv| std::cmp::Reverse(kv.key));
        v.truncate(k);
        v
    };
    let got = CpuBitonic::default().topk(&log, k, threads);
    assert_eq!(
        got.iter().map(|x| x.key).collect::<Vec<_>>(),
        reference.iter().map(|x| x.key).collect::<Vec<_>>()
    );
    println!("results verified against full sort ✓");
}
