//! A batch SQL "shell": parses and executes the paper's query shapes
//! through the qdb SQL front-end, printing each plan (EXPLAIN) before
//! running it with every strategy. `EXPLAIN SANITIZE SELECT …` runs the
//! query under the simt sanitizer and prints per-launch
//! racecheck/memcheck/initcheck/perf findings; `EXPLAIN LINT SELECT …`
//! statically analyzes every launch plan the query makes (validity,
//! occupancy, predicted coalescing/bank behavior, bounds proofs)
//! before it runs.
//!
//! ```sh
//! cargo run --release --example sql_shell
//! # or pass your own statement:
//! cargo run --release --example sql_shell -- \
//!   "EXPLAIN LINT SELECT id FROM tweets WHERE lang='ja' ORDER BY retweet_count DESC LIMIT 10"
//! ```

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::{
    execute_sql, explain_filtered_topk, explain_lint, explain_sanitize, parse_statement,
    GpuTweetTable, Query, Statement, Strategy, TableStats,
};
use gpu_topk::simt::Device;

fn main() {
    let n = 1 << 18;
    let host = TweetTable::generate(n, 7);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);
    let stats = TableStats::gather(&table);
    println!("loaded {n} synthetic tweets\n");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let cutoff = host.time_cutoff_for_selectivity(0.25);
    let default_queries = vec![
        format!("SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
        "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20".to_string(),
        "SELECT id FROM tweets WHERE lang='en' OR lang='es' ORDER BY retweet_count DESC LIMIT 25".to_string(),
        "SELECT uid, COUNT(*) AS num_tweets FROM tweets GROUP BY uid ORDER BY num_tweets DESC LIMIT 10".to_string(),
        format!("EXPLAIN SANITIZE SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
        format!("EXPLAIN LINT SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50"),
    ];
    let queries = if args.is_empty() {
        default_queries
    } else {
        args
    };

    for sql in &queries {
        println!("sql> {sql}");
        let stmt = match parse_statement(sql) {
            Ok(s) => s,
            Err(e) => {
                println!("  parse error: {e}\n");
                continue;
            }
        };
        match stmt {
            Statement::ExplainSanitize(q) => {
                match explain_sanitize(&dev, &table, &q, Strategy::CombinedBitonic) {
                    Ok(out) => print!("{}", out.render()),
                    Err(e) => println!("  {e}"),
                }
            }
            Statement::ExplainLint(q) => {
                match explain_lint(&dev, &table, &q, Strategy::CombinedBitonic) {
                    Ok(out) => print!("{}", out.render()),
                    Err(e) => println!("  {e}"),
                }
            }
            Statement::Explain(q) => print_plan(&dev, &table, &stats, &q),
            Statement::Select(q) => {
                print_plan(&dev, &table, &stats, &q);
                for strat in Strategy::all() {
                    match execute_sql(&dev, &table, &q, strat) {
                        Ok(r) => println!(
                            "  {:<18} {:>9.1} µs  -> {} rows, first id {}",
                            strat.name(),
                            r.kernel_time.micros(),
                            r.ids.len(),
                            r.ids.first().map_or("-".into(), |i| i.to_string())
                        ),
                        Err(e) => println!("  {:<18} {e}", strat.name()),
                    }
                }
            }
        }
        println!();
    }
}

fn print_plan(dev: &Device, table: &GpuTweetTable, stats: &TableStats, q: &Query) {
    if let Some(op) = &q.filter {
        let plan = explain_filtered_topk(dev.spec(), table, stats, op, q.limit);
        print!("{}", plan.render());
    }
}
