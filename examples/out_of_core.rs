//! Out-of-core top-k: data larger than device memory, streamed in chunks
//! with transfers overlapped against compute (the Section 4.3 discussion
//! on the PCI-E bottleneck, made concrete).
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use gpu_topk::datagen::{reference_topk, Distribution, Uniform};
use gpu_topk::simt::{Device, DeviceSpec};
use gpu_topk::topk::chunked::{chunked_bitonic_topk, ChunkedConfig};

fn main() {
    // a deliberately tiny "GPU": 1 MiB of device memory
    let spec = DeviceSpec {
        global_mem_bytes: 1 << 20,
        ..DeviceSpec::titan_x_maxwell()
    };
    let dev = Device::new(spec);

    let n = 1 << 21; // 8 MiB of f32 — 8× device memory
    let k = 64;
    let data: Vec<f32> = Uniform.generate(n, 31337);
    println!(
        "input: {:.1} MiB, device memory: {:.1} MiB — the data cannot fit\n",
        (n * 4) as f64 / (1 << 20) as f64,
        spec.global_mem_bytes as f64 / (1 << 20) as f64
    );

    for overlap in [false, true] {
        let r = chunked_bitonic_topk(
            &data,
            k,
            &dev,
            ChunkedConfig {
                overlap,
                ..Default::default()
            },
        )
        .expect("chunked top-k");
        println!(
            "{}: {} chunks | transfer {:.3} ms | compute {:.3} ms | wall {:.3} ms",
            if overlap {
                "overlapped (double-buffered)"
            } else {
                "serial                      "
            },
            r.chunks,
            r.transfer_time.millis(),
            r.compute_time.millis(),
            r.wall_time.millis(),
        );
        assert_eq!(r.items, reference_topk(&data, k));
    }

    println!("\nresults verified against host sort ✓");
    println!("note how the reductive top-k hides nearly all compute behind PCI-E transfer,");
    println!("exactly as the paper argues for streaming memory-size chunks.");
}
