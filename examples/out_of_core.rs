//! Out-of-core top-k: data larger than device memory, streamed in chunks
//! with transfers overlapped against compute (the Section 4.3 discussion
//! on the PCI-E bottleneck, made concrete).
//!
//! The streaming loop is written once against the [`Backend`] trait, so
//! the same code drives both engines: the simulator (with its modeled
//! transfer/compute overlap) and the real CPU.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use gpu_topk::datagen::{reference_topk, Distribution, TopKItem, Uniform};
use gpu_topk::simt::{Device, DeviceSpec};
use gpu_topk::topk::backend::{Backend, ExecBackend};
use gpu_topk::topk::chunked::{chunked_bitonic_topk, ChunkedConfig};
use gpu_topk::topk::{TopKError, TopKRequest};

/// Streams `data` through `backend` in `chunk` -sized pieces: each chunk
/// is uploaded, reduced to its local top-k, and the per-chunk candidates
/// are merged with one final top-k — the reductive property that makes
/// out-of-core top-k a bandwidth problem, not a memory problem.
fn streamed_topk<T: TopKItem>(
    backend: &ExecBackend,
    data: &[T],
    k: usize,
    chunk: usize,
) -> Result<(Vec<T>, usize), TopKError> {
    let req = TopKRequest::largest(k);
    let mut candidates = Vec::with_capacity(data.len().div_ceil(chunk) * k);
    let mut chunks = 0usize;
    for piece in data.chunks(chunk) {
        let buf = backend.upload(piece);
        candidates.extend(backend.topk(&req, &buf)?.items);
        chunks += 1;
    }
    let buf = backend.upload(&candidates);
    Ok((backend.topk(&req, &buf)?.items, chunks))
}

fn main() {
    // a deliberately tiny "GPU": 1 MiB of device memory
    let spec = DeviceSpec {
        global_mem_bytes: 1 << 20,
        ..DeviceSpec::titan_x_maxwell()
    };
    let dev = Device::new(spec);

    let n = 1 << 21; // 8 MiB of f32 — 8× device memory
    let k = 64;
    let chunk = spec.global_mem_bytes / 4 / 2; // double-buffered halves
    let data: Vec<f32> = Uniform.generate(n, 31337);
    let expect = reference_topk(&data, k);
    println!(
        "input: {:.1} MiB, device memory: {:.1} MiB — the data cannot fit\n",
        (n * 4) as f64 / (1 << 20) as f64,
        spec.global_mem_bytes as f64 / (1 << 20) as f64
    );

    // the same streaming loop, one backend surface, two engines
    for backend in [ExecBackend::simt(&dev), ExecBackend::cpu(4)] {
        let (items, chunks) = streamed_topk(&backend, &data, k, chunk).expect("streamed top-k");
        println!(
            "backend {:>4}: {} chunks of {} elements, top-{k} verified ✓",
            backend.name(),
            chunks,
            chunk
        );
        assert_eq!(items, expect);
    }

    // on the simulator, the chunked pipeline also models the PCI-E
    // overlap: double-buffering hides compute behind the transfers
    println!();
    for overlap in [false, true] {
        let r = chunked_bitonic_topk(
            &data,
            k,
            &dev,
            ChunkedConfig {
                overlap,
                ..Default::default()
            },
        )
        .expect("chunked top-k");
        println!(
            "{}: {} chunks | transfer {:.3} ms | compute {:.3} ms | wall {:.3} ms",
            if overlap {
                "overlapped (double-buffered)"
            } else {
                "serial                      "
            },
            r.chunks,
            r.transfer_time.millis(),
            r.compute_time.millis(),
            r.wall_time.millis(),
        );
        assert_eq!(r.items, expect);
    }

    println!("\nresults verified against host sort ✓");
    println!("note how the reductive top-k hides nearly all compute behind PCI-E transfer,");
    println!("exactly as the paper argues for streaming memory-size chunks.");
}
