//! "Most expensive products" — the paper's introductory example: top-k
//! over key+payload records, with the planner choosing the algorithm.
//!
//! A product catalog is scored by price; the query keeps the 20 priciest
//! items in a category. We run top-k on `(price, product_id)` pairs —
//! exactly the `(key, id)` layout Section 6.6 recommends — and let the
//! Section 7 cost-model planner pick between bitonic top-k and radix
//! select before executing its choice.
//!
//! ```sh
//! cargo run --release --example ecommerce_products
//! ```

use gpu_topk::datagen::{Kv, TopKItem};
use gpu_topk::simt::Device;
use gpu_topk::topk::{bitonic, delegate, radix_select};
use gpu_topk::topk_costmodel::{self as costmodel, planner::Algorithm, ReductionProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 500_000;
    let k = 20;
    let mut rng = SmallRng::seed_from_u64(7);

    // a catalog with log-normal-ish prices in cents
    let products: Vec<Kv<f32>> = (0..n)
        .map(|id| {
            let base: f32 = rng.gen_range(2.0..6.0);
            let price = 10f32.powf(base) + rng.gen_range(0.0..0.99);
            Kv::new(price, id as u32)
        })
        .collect();

    let dev = Device::titan_x();
    let input = dev.upload(&products);

    // ask the planner which algorithm to run
    let choice = costmodel::recommend(
        dev.spec(),
        n,
        k,
        Kv::<f32>::SIZE_BYTES,
        &ReductionProfile::UniformFloats,
    );
    println!(
        "planner: {:?} (predicted {:.1} µs vs {:.1} µs)",
        choice.algorithm,
        choice.predicted_seconds * 1e6,
        choice.alternative_seconds * 1e6
    );

    let result = match choice.algorithm {
        Algorithm::BitonicTopK => {
            bitonic::bitonic_topk(&dev, &input, k, bitonic::BitonicConfig::default()).unwrap()
        }
        Algorithm::RadixSelect => radix_select::radix_select_topk(&dev, &input, k).unwrap(),
        Algorithm::DelegateSelect => {
            delegate::delegate_select_topk(&dev, &input, k, delegate::DelegateConfig::default())
                .unwrap()
        }
    };

    println!(
        "\n{} most expensive products ({} simulated):",
        k, result.time
    );
    println!("{:>4}  {:>12}  {:>10}", "#", "price ($)", "product id");
    for (rank, item) in result.items.iter().enumerate() {
        println!(
            "{:>4}  {:>12.2}  {:>10}",
            rank + 1,
            item.key / 100.0,
            item.value
        );
    }

    // sanity: descending prices
    assert!(result.items.windows(2).all(|w| w[0].key >= w[1].key));
}
