//! Sharded serving demo: a simulated multi-GPU node answers a query load
//! by scatter-gather — per-shard top-k on every device, k delegate
//! candidates shipped over the interconnect, bitonic merge on device 0.
//!
//! ```sh
//! cargo run --release --example sharded_serving [-- out.json]
//! ```
//!
//! Sweeps device count × partition policy, checks every completed query
//! against the single-device oracle (results must be bit-identical — the
//! tie-break by row id makes the merge deterministic), prints the
//! scaling table and the sharded EXPLAIN plan, and writes the per-config
//! JSON rows as the artifact CI uploads. Exits non-zero on any oracle
//! mismatch.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::shard::{PartitionPolicy, ShardedServer, ShardedTable};
use gpu_topk::qdb::{
    execute_sql, explain::explain_sharded_topk, parse_sql, GpuTweetTable, ServerConfig, Strategy,
};
use gpu_topk::simt::topology::{Cluster, ClusterSpec};
use gpu_topk::simt::Device;

fn workload(host: &TweetTable, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match i % 3 {
            0 => {
                let cutoff = host.time_cutoff_for_selectivity(0.1 + 0.05 * (i % 6) as f64);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {}",
                    8 + (i % 9)
                )
            }
            1 => format!(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
                4 + (i % 13)
            ),
            _ => format!(
                "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT {}",
                3 + (i % 7)
            ),
        })
        .collect()
}

fn main() {
    let out_path = gpu_topk::artifact_path("sharded_serving_report.json");
    let n = 1 << 14;
    let host = TweetTable::generate(n, 4242);
    let sqls = workload(&host, 24);

    // single-device oracle: the sharded results must match bit for bit
    let dev = Device::titan_x();
    let gpu = GpuTweetTable::upload(&dev, &host);
    let oracle: Vec<Vec<u32>> = sqls
        .iter()
        .map(|s| {
            execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                .expect("fault-free oracle")
                .ids
        })
        .collect();

    println!(
        "sharded serving: {} queries over {} tweets, device sweep x partition policy\n",
        sqls.len(),
        n
    );
    println!(
        "{:<14}{:>6}{:>8}{:>8}{:>14}{:>14}{:>10}",
        "policy", "devs", "done", "exact", "makespan(ms)", "cand-bytes", "retries"
    );

    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for policy in PartitionPolicy::all() {
        for devices in [1usize, 2, 4, 8] {
            let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
            let table = ShardedTable::partition(&cluster, &host, policy).expect("partition");
            let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
            let tickets: Vec<_> = sqls
                .iter()
                .map(|s| server.submit(s).expect("admission"))
                .collect();
            let report = server.drain();

            let mut exact = 0usize;
            let mut retries = 0usize;
            for (i, t) in tickets.iter().enumerate() {
                let served = &report.queries[t.0];
                retries += served.retries;
                if !served.completed() {
                    eprintln!(
                        "UNEXPECTED FAILURE ({}, {} devices): {} -> {:?}",
                        policy.name(),
                        devices,
                        served.sql,
                        served.error
                    );
                    mismatches += 1;
                    continue;
                }
                if served.ids == oracle[i] {
                    exact += 1;
                } else {
                    eprintln!(
                        "ORACLE MISMATCH ({}, {} devices): {}",
                        policy.name(),
                        devices,
                        served.sql
                    );
                    mismatches += 1;
                }
            }
            // delegate traffic for one representative query re-executed
            // on a fresh cluster (the server's own merges share links)
            let candidate_bytes = {
                let probe = Cluster::new(ClusterSpec::pcie_node(devices));
                let ptable = ShardedTable::partition(&probe, &host, policy).expect("partition");
                let q = parse_sql(&sqls[0]).unwrap();
                let r = gpu_topk::qdb::shard::execute_sharded(
                    &probe,
                    &ptable,
                    &q,
                    Strategy::StageBitonic,
                    0,
                )
                .expect("probe query");
                r.candidate_bytes
            };

            println!(
                "{:<14}{:>6}{:>8}{:>8}{:>14.4}{:>14}{:>10}",
                policy.name(),
                devices,
                report.resilience.completed,
                exact,
                report.makespan.millis(),
                candidate_bytes,
                retries
            );
            rows.push(format!(
                "{{\"policy\":\"{}\",\"devices\":{},\"queries\":{},\"completed\":{},\
                 \"exact\":{},\"makespan_ms\":{},\"candidate_bytes\":{},\"retries\":{}}}",
                policy.name(),
                devices,
                sqls.len(),
                report.resilience.completed,
                exact,
                report.makespan.millis(),
                candidate_bytes,
                retries
            ));
        }
    }

    // the sharded EXPLAIN for the 4-device hash configuration
    let cluster = Cluster::new(ClusterSpec::pcie_node(4));
    let table = ShardedTable::partition(&cluster, &host, PartitionPolicy::Hash).expect("partition");
    let cutoff = host.time_cutoff_for_selectivity(0.3);
    let plan = explain_sharded_topk(
        cluster.spec(),
        &table,
        Some(&gpu_topk::qdb::FilterOp::TimeLess(cutoff)),
        16,
    );
    println!("\n{}", plan.render());

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, json).expect("write sharded serving report");
    println!("wrote {}", out_path.display());
    if mismatches > 0 {
        eprintln!("{mismatches} sharded quer(ies) diverged from the single-device oracle");
        std::process::exit(1);
    }
    println!("every sharded result matched the single-device oracle bit for bit");
}
