//! Failover serving demo: a replicated sharded server rides through an
//! escalating sequence of permanent device losses.
//!
//! ```sh
//! cargo run --release --example failover_serving [-- out.json]
//! ```
//!
//! For each replication factor r ∈ {1, 2, 3} on a 4-device node, the
//! demo drains five batches — healthy, device 1 lost with the batch
//! already admitted, recovery, device 3 lost the same way, recovery —
//! and checks the availability contract after every drain:
//!
//! * **r ≥ 2**: every query completes bit-identical to the
//!   single-device oracle, served over drain-time failovers; online
//!   rebuild restores the replication factor so even the *second* loss
//!   is absorbed;
//! * **r = 1**: a loss batch fails loudly — typed, device-attributed
//!   [`QdbError::DeviceFault`]s, never a truncated result — and the
//!   following batch completes again from rebuilt copies.
//!
//! Prints the per-stage table plus the replicated EXPLAIN plan, writes
//! the JSON rows CI uploads, and exits non-zero on any contract
//! violation.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::shard::{PartitionPolicy, ReplicationFactor, ShardedServer, ShardedTable};
use gpu_topk::qdb::{
    execute_sql, explain::explain_sharded_topk, parse_sql, GpuTweetTable, QdbError, ServerConfig,
    Strategy,
};
use gpu_topk::simt::topology::{Cluster, ClusterSpec};
use gpu_topk::simt::{Device, FaultPlan, SimTime};

fn workload(host: &TweetTable, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match i % 3 {
            0 => {
                let cutoff = host.time_cutoff_for_selectivity(0.1 + 0.05 * (i % 6) as f64);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {}",
                    8 + (i % 9)
                )
            }
            1 => format!(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
                4 + (i % 13)
            ),
            _ => format!(
                "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT {}",
                3 + (i % 7)
            ),
        })
        .collect()
}

/// The escalating loss schedule: stage label and the device (if any)
/// that dies *after* the stage's batch is admitted.
const STAGES: [(&str, Option<usize>); 5] = [
    ("healthy", None),
    ("lose dev1", Some(1)),
    ("recover", None),
    ("lose dev3", Some(3)),
    ("recover", None),
];

fn main() {
    let out_path = gpu_topk::artifact_path("failover_serving_report.json");
    let n = 1 << 14;
    let devices = 4usize;
    let host = TweetTable::generate(n, 2024);
    let sqls = workload(&host, 12);

    // single-device oracle: completed queries must match bit for bit
    let dev = Device::titan_x();
    let gpu = GpuTweetTable::upload(&dev, &host);
    let oracle: Vec<Vec<u32>> = sqls
        .iter()
        .map(|s| {
            execute_sql(&dev, &gpu, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                .expect("fault-free oracle")
                .ids
        })
        .collect();

    println!(
        "failover serving: {} queries/batch over {} tweets, {} devices, escalating loss\n",
        sqls.len(),
        n,
        devices
    );
    println!(
        "{:<4}{:<12}{:>6}{:>8}{:>10}{:>10}{:>8}{:>14}",
        "r", "stage", "down", "done", "failover", "rebuild", "trips", "makespan(ms)"
    );

    let mut rows = Vec::new();
    let mut violations = 0usize;
    for r_factor in [1usize, 2, 3] {
        let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
        let table = ShardedTable::partition_replicated(
            &cluster,
            &host,
            PartitionPolicy::Hash,
            ReplicationFactor(r_factor),
        )
        .expect("replicated partition");
        let mut server = ShardedServer::new(&cluster, &table, ServerConfig::default());
        let mut down = 0usize;
        for (stage, loss) in STAGES {
            for s in &sqls {
                server.submit(s).expect("admission");
            }
            // the loss lands with the batch already admitted: queries
            // routed to the dying device must fail over at drain
            if let Some(d) = loss {
                cluster
                    .device(d)
                    .set_fault_plan(FaultPlan::down_at(SimTime::ZERO));
                down += 1;
            }
            let report = server.drain();

            // per-drain reports list queries in submission order
            for (i, served) in report.queries.iter().enumerate() {
                match &served.error {
                    None if served.ids == oracle[i] => {}
                    None => {
                        eprintln!("ORACLE MISMATCH (r={r_factor}, {stage}): {}", served.sql);
                        violations += 1;
                    }
                    Some(QdbError::DeviceFault { transient, .. })
                        if !transient && served.ids.is_empty() => {}
                    Some(e) => {
                        eprintln!(
                            "UNTYPED OR TRUNCATED FAILURE (r={r_factor}, {stage}): {} -> {e:?}",
                            served.sql
                        );
                        violations += 1;
                    }
                }
            }
            let completed = report.resilience.completed;
            if r_factor >= 2 && completed != sqls.len() {
                eprintln!(
                    "AVAILABILITY VIOLATION: r={r_factor} completed only {completed}/{} at \
                     stage '{stage}'",
                    sqls.len()
                );
                violations += 1;
            }
            if r_factor == 1 && loss.is_some() && completed != 0 {
                eprintln!(
                    "LOUDNESS VIOLATION: r=1 absorbed a permanent loss at stage '{stage}' \
                     ({completed} completions)"
                );
                violations += 1;
            }
            if r_factor == 1 && loss.is_none() && completed != sqls.len() {
                eprintln!(
                    "REBUILD VIOLATION: r=1 stage '{stage}' should serve from rebuilt \
                     copies, completed {completed}/{}",
                    sqls.len()
                );
                violations += 1;
            }

            println!(
                "{:<4}{:<12}{:>6}{:>8}{:>10}{:>10}{:>8}{:>14.4}",
                r_factor,
                stage,
                down,
                completed,
                report.resilience.failovers,
                report.resilience.rebuilds,
                report.resilience.breaker_trips,
                report.makespan.millis()
            );
            rows.push(format!(
                "{{\"replication\":{},\"stage\":\"{}\",\"down_devices\":{},\"queries\":{},\
                 \"completed\":{},\"failovers\":{},\"rebuilds\":{},\"breaker_trips\":{},\
                 \"makespan_ms\":{}}}",
                r_factor,
                stage,
                down,
                sqls.len(),
                completed,
                report.resilience.failovers,
                report.resilience.rebuilds,
                report.resilience.breaker_trips,
                report.makespan.millis()
            ));
        }
        println!();
    }

    // the replicated EXPLAIN for the r=2 hash configuration
    let cluster = Cluster::new(ClusterSpec::pcie_node(devices));
    let table = ShardedTable::partition_replicated(
        &cluster,
        &host,
        PartitionPolicy::Hash,
        ReplicationFactor(2),
    )
    .expect("replicated partition");
    let cutoff = host.time_cutoff_for_selectivity(0.3);
    let plan = explain_sharded_topk(
        cluster.spec(),
        &table,
        Some(&gpu_topk::qdb::FilterOp::TimeLess(cutoff)),
        16,
    );
    println!("{}", plan.render());

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, json).expect("write failover serving report");
    println!("wrote {}", out_path.display());
    if violations > 0 {
        eprintln!("{violations} availability-contract violation(s)");
        std::process::exit(1);
    }
    println!(
        "availability contract held: r >= 2 served every query bit-exact through every loss; \
         r = 1 failed loudly and recovered from rebuilt copies"
    );
}
