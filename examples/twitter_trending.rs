//! The MapD integration demo, upgraded to the streaming regime: tweets
//! arrive in epoch-stamped batches, a standing "trending" view folds
//! each delta into its result with a bitonic run-merge instead of
//! rescanning the table, and a result-cached [`Server`] shows dashboard
//! queries turning into zero-launch cache hits whenever no data arrived.
//!
//! Every epoch the maintained view is checked bit-for-bit against a
//! from-scratch rescan of the whole table; any divergence exits
//! non-zero. A JSON ledger of the run lands at the path printed last
//! (override with the first CLI argument or `$GPU_TOPK_OUT_DIR`).
//!
//! ```sh
//! cargo run --release --example twitter_trending
//! ```

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::{
    execute_sql, explain_view, parse_sql, GpuTweetTable, Server, ServerConfig, Strategy,
    SubmitOptions, TopKView, ViewConfig, ViewMode,
};
use gpu_topk::simt::Device;

/// The standing query: the paper's Q2 ranking function as a live view.
const TRENDING: &str =
    "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20";

/// Arrivals per epoch. The 90 000-row burst exceeds the view's refresh
/// fraction and forces a rescan; the quiet epoch (0 arrivals) lets both
/// the view and the result cache serve without touching the device.
const ARRIVALS: [usize; 6] = [4096, 2048, 90_000, 1024, 0, 3072];

fn dashboard(host: &TweetTable) -> Vec<String> {
    let cutoff = host.time_cutoff_for_selectivity(0.25);
    vec![
        TRENDING.to_string(),
        format!(
            "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
             ORDER BY retweet_count DESC LIMIT 12"
        ),
        "SELECT id FROM tweets ORDER BY retweet_count ASC LIMIT 8".to_string(),
    ]
}

fn main() {
    let base = 1 << 17;
    let cap = base + ARRIVALS.iter().sum::<usize>();
    println!("loading {base} synthetic tweets (capacity {cap} rows for the stream)…");
    let mut host = TweetTable::generate(base, 2024);
    let dev = Device::titan_x();
    let gpu = GpuTweetTable::upload_with_capacity(&dev, &host, cap);

    let view = TopKView::register(TRENDING, Strategy::StageBitonic, ViewConfig::default())
        .expect("trending view registers");
    let mut server = Server::new(
        &dev,
        &gpu,
        ServerConfig {
            result_cache: true,
            coalesce: false,
            ..ServerConfig::default()
        },
    );

    println!("\nstanding view: {TRENDING}");
    println!(
        "\n{:<6}{:>9}  {:<12}{:>10}{:>12}{:>12}  cache h/m/r",
        "epoch", "arrivals", "mode", "delta", "bytes", "kernel µs"
    );

    let mut violations = 0usize;
    let mut rows = Vec::new();
    // per-drain cache counters, accumulated into a run-long ledger
    let (mut hits, mut misses, mut refreshes) = (0usize, 0usize, 0usize);
    for (e, &arrivals) in ARRIVALS.iter().enumerate() {
        // 1. a batch of fresh tweets lands (epoch bumps on the splice)
        if arrivals > 0 {
            let batch = TweetTable::generate_at(arrivals, 9000 + e as u64, host.len() as u32);
            gpu.append_batch(&dev, &batch)
                .expect("append within capacity");
            host.extend_from(&batch);
        }

        // 2. the standing view folds the delta (or rescans past the
        //    crossover); count exactly what the refresh touched. The
        //    plan is captured before the refresh advances the view.
        let plan = explain_view(&view, host.len(), gpu.epoch(), None);
        let log0 = dev.log_len();
        let refresh = view.refresh(&dev, &gpu).expect("view refresh");
        let window = dev.window_since(log0);

        // 3. bit-exactness: the maintained result must equal a rescan
        let oracle = execute_sql(
            &dev,
            &gpu,
            &parse_sql(TRENDING).unwrap(),
            Strategy::StageBitonic,
        )
        .expect("rescan oracle")
        .ids;
        if refresh.ids != oracle {
            eprintln!(
                "ORACLE MISMATCH at epoch {}: maintained view != rescan",
                e + 1
            );
            violations += 1;
        }

        // 4. the dashboard hits the result-cached server; every answer
        //    is also checked against a from-scratch execution
        let sqls = dashboard(&host);
        for sql in &sqls {
            server
                .submit(sql, SubmitOptions::default())
                .expect("dashboard submit");
        }
        let report = server.drain();
        for served in &report.queries {
            let expect = execute_sql(
                &dev,
                &gpu,
                &parse_sql(&served.sql).unwrap(),
                Strategy::StageBitonic,
            )
            .expect("dashboard oracle")
            .ids;
            if served.result.ids != expect {
                eprintln!("CACHE MISMATCH at epoch {}: {}", e + 1, served.sql);
                violations += 1;
            }
        }
        hits += report.resilience.cache_hits;
        misses += report.resilience.cache_misses;
        refreshes += report.resilience.cache_refreshes;
        if arrivals == 0 && report.queries.iter().any(|q| !q.cached) {
            eprintln!(
                "CACHE VIOLATION at epoch {}: quiet epoch should serve entirely from cache",
                e + 1
            );
            violations += 1;
        }

        println!(
            "{:<6}{:>9}  {:<12}{:>10}{:>12}{:>12.1}  {}/{}/{}",
            e + 1,
            arrivals,
            refresh.mode.name(),
            refresh.delta_rows,
            window.stats.global_bytes(),
            refresh.kernel_time.micros(),
            hits,
            misses,
            refreshes
        );
        if refresh.mode == ViewMode::Rescan && arrivals > 0 {
            for line in plan.render().lines() {
                println!("      | {line}");
            }
        }
        rows.push(format!(
            "{{\"epoch\":{},\"arrivals\":{},\"mode\":\"{}\",\"delta_rows\":{},\
             \"global_bytes\":{},\"kernel_us\":{:.3},\"cache_hits\":{},\
             \"cache_misses\":{},\"cache_refreshes\":{},\"top_id\":{}}}",
            e + 1,
            arrivals,
            refresh.mode.name(),
            refresh.delta_rows,
            window.stats.global_bytes(),
            refresh.kernel_time.micros(),
            hits,
            misses,
            refreshes,
            refresh.ids.first().copied().unwrap_or(0)
        ));
    }

    let stats = view.stats();
    println!(
        "\nview ledger: {} delta-merges, {} rescans, {} current hits, {} delta rows folded",
        stats.delta_merges, stats.rescans, stats.current_hits, stats.delta_rows_folded
    );
    println!(
        "result cache: {hits} hits, {misses} misses, {refreshes} refreshes across {} epochs",
        ARRIVALS.len()
    );

    let out_path = gpu_topk::artifact_path("twitter_trending_stream.json");
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, json).expect("write streaming trending report");
    println!("wrote {}", out_path.display());
    if violations > 0 {
        eprintln!("{violations} correctness violation(s)");
        std::process::exit(1);
    }
}
