//! The MapD integration demo (paper Sections 5 and 6.8): SQL-shaped
//! queries over a synthetic Twitter table, comparing MapD's default
//! filter+sort plan against bitonic top-k and the fused kernels.
//!
//! ```sh
//! cargo run --release --example twitter_trending
//! ```

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::{
    explain_filtered_topk,
    queries::{filtered_topk, group_topk, ranked_topk},
    FilterOp, GpuTweetTable, Strategy, TableStats, TopKStrategy,
};
use gpu_topk::simt::Device;

fn main() {
    let n = 1 << 19;
    println!("loading {n} synthetic tweets…");
    let host = TweetTable::generate(n, 2024);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);

    // Q1: most retweeted tweets in the last ~10 days of the month
    let cutoff = host.time_cutoff_for_selectivity(0.33);
    println!("\nQ1: SELECT id FROM tweets WHERE tweet_time < {cutoff} ORDER BY retweet_count DESC LIMIT 50");
    let stats = TableStats::gather(&table);
    let plan = explain_filtered_topk(dev.spec(), &table, &stats, &FilterOp::TimeLess(cutoff), 50);
    print!("{}", plan.render());
    for strat in Strategy::all() {
        let r = filtered_topk(&dev, &table, &FilterOp::TimeLess(cutoff), 50, strat)
            .expect("Q1 execution");
        println!(
            "  {:<18} {:>9.1} µs  (top tweet id={} with {} retweets)",
            strat.name(),
            r.kernel_time.micros(),
            r.ids[0],
            host.retweet_count[r.ids[0] as usize]
        );
    }

    // Q2: custom ranking function
    println!("\nQ2: … ORDER BY retweet_count + 0.5*likes_count DESC LIMIT 50");
    for strat in Strategy::all() {
        let r = ranked_topk(&dev, &table, 50, strat).expect("Q2 execution");
        println!("  {:<18} {:>9.1} µs", strat.name(), r.kernel_time.micros());
    }

    // Q3: language filter (~80% selectivity)
    println!("\nQ3: … WHERE lang='en' OR lang='es' ORDER BY retweet_count DESC LIMIT 50");
    for strat in Strategy::all() {
        let r = filtered_topk(&dev, &table, &FilterOp::LangIn(vec![0, 1]), 50, strat)
            .expect("Q3 execution");
        println!("  {:<18} {:>9.1} µs", strat.name(), r.kernel_time.micros());
    }

    // Q4: group-by
    println!("\nQ4: SELECT uid, COUNT(*) FROM tweets GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50");
    for strat in [TopKStrategy::Sort, TopKStrategy::Bitonic] {
        let r = group_topk(&dev, &table, 50, strat).expect("Q4 execution");
        let breakdown: Vec<String> = r
            .breakdown
            .iter()
            .map(|(name, t)| format!("{name}={:.1}µs", t.micros()))
            .collect();
        println!(
            "  {:<18} {:>9.1} µs  [{}]",
            format!("{strat:?}").to_lowercase(),
            r.kernel_time.micros(),
            breakdown.join(" ")
        );
    }
    println!("\n(The sort step is what bitonic top-k replaces; the group-by cost is shared.)");
}
