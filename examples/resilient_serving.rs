//! Resilient serving demo: drives the qdb server through an escalating
//! fault-plan sweep and prints the shed / retried / degraded / completed
//! breakdown at every step.
//!
//! ```sh
//! cargo run --release --example resilient_serving [-- out.json]
//! ```
//!
//! The per-step resilience ledgers are also written as JSON — the
//! artifact the CI chaos job uploads. The report lands at the first CLI
//! argument if given, else `$GPU_TOPK_OUT_DIR/resilience_report.json`,
//! else the temp directory. Exits non-zero if any completed query
//! disagrees with the fault-free oracle, or if a fault-free control run
//! reports anything but a clean ledger.

use gpu_topk::datagen::twitter::TweetTable;
use gpu_topk::qdb::{
    execute_sql, parse_sql, GpuTweetTable, QdbError, Server, ServerConfig, Strategy, SubmitOptions,
};
use gpu_topk::simt::{Device, FaultPlan, SimTime};

fn workload(host: &TweetTable, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match i % 4 {
            0 | 1 => {
                let cutoff = host.time_cutoff_for_selectivity(0.05 + 0.04 * (i % 6) as f64);
                format!(
                    "SELECT id FROM tweets WHERE tweet_time < {cutoff} \
                     ORDER BY retweet_count DESC LIMIT {}",
                    5 + (i % 12)
                )
            }
            2 => format!(
                "SELECT id FROM tweets ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {}",
                4 + (i % 8)
            ),
            _ => format!(
                "SELECT uid, COUNT(*) FROM tweets GROUP BY uid \
                 ORDER BY COUNT(*) DESC LIMIT {}",
                3 + (i % 5)
            ),
        })
        .collect()
}

/// Order keys of a result (retweet counts / group counts / rank bits):
/// the tie-insensitive equality used against the oracle.
fn signature(host: &TweetTable, sql: &str, ids: &[u32]) -> Vec<u64> {
    let q = parse_sql(sql).expect("workload sql");
    if q.group_by_uid {
        let mut counts = std::collections::HashMap::new();
        for &u in &host.uid {
            *counts.entry(u).or_insert(0u64) += 1;
        }
        ids.iter().map(|u| counts[u]).collect()
    } else if matches!(q.order_by, gpu_topk::qdb::sql::OrderBy::Rank { .. }) {
        ids.iter()
            .map(|&id| {
                let rank = host.retweet_count[id as usize] as f32
                    + 0.5 * host.likes_count[id as usize] as f32;
                rank.to_bits() as u64
            })
            .collect()
    } else {
        ids.iter()
            .map(|&id| host.retweet_count[id as usize] as u64)
            .collect()
    }
}

fn main() {
    let out_path = gpu_topk::artifact_path("resilience_report.json");
    let n = 1 << 14;
    let host = TweetTable::generate(n, 99);
    let dev = Device::titan_x();
    let table = GpuTweetTable::upload(&dev, &host);
    let sqls = workload(&host, 48);
    let oracle: Vec<Vec<u32>> = sqls
        .iter()
        .map(|s| {
            execute_sql(&dev, &table, &parse_sql(s).unwrap(), Strategy::StageBitonic)
                .expect("fault-free oracle")
                .ids
        })
        .collect();

    // fault rate escalates left to right; the last column is chaos
    let steps: &[(&str, f64)] = &[
        ("clean", 0.0),
        ("mild", 0.02),
        ("rough", 0.10),
        ("hostile", 0.30),
        ("chaos", 0.70),
    ];
    println!(
        "serving {} queries over {} tweets per step (queue bound 32, deadline 50ms)\n",
        sqls.len(),
        n
    );
    println!(
        "{:<10}{:>6}{:>6}{:>9}{:>9}{:>11}{:>9}{:>9}{:>8}",
        "step", "rate", "shed", "retries", "serial", "cpu-heap", "timeout", "done", "faults"
    );

    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for (step, rate) in steps {
        dev.set_fault_plan(FaultPlan {
            seed: 0xFEED + rows.len() as u64,
            launch_failure_rate: *rate,
            corruption_rate: *rate * 0.5,
            stall_rate: *rate * 0.5,
            stall_delay: SimTime(150e-6),
            oom_rate: *rate * 0.25,
            max_faults: usize::MAX,
            ..FaultPlan::none()
        });
        let cfg = ServerConfig {
            max_queue: 32,
            default_deadline: Some(SimTime(50e-3)),
            ..ServerConfig::default()
        };
        let mut server = Server::new(&dev, &table, cfg);
        let mut admitted = Vec::new();
        for (i, sql) in sqls.iter().enumerate() {
            match server.submit(sql, SubmitOptions::default()) {
                Ok(t) => admitted.push((i, t)),
                Err(QdbError::Overloaded { .. }) => {}
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        let report = server.drain();
        dev.clear_fault_plan();

        for (i, t) in &admitted {
            let served = &report.queries[t.0];
            if served.completed()
                && signature(&host, &sqls[*i], &served.result.ids)
                    != signature(&host, &sqls[*i], &oracle[*i])
            {
                eprintln!("ORACLE MISMATCH at step {step}: {}", served.sql);
                mismatches += 1;
            }
        }
        let r = &report.resilience;
        println!(
            "{:<10}{:>6.2}{:>6}{:>9}{:>9}{:>11}{:>9}{:>9}{:>8}",
            step,
            rate,
            r.shed,
            r.retries,
            r.degraded_serial,
            r.degraded_cpu,
            r.timed_out,
            r.completed,
            r.faults_injected
        );
        if *rate == 0.0 && (r.retries + r.degraded_serial + r.degraded_cpu + r.timed_out) != 0 {
            eprintln!("clean step reported a dirty ledger: {}", r.render());
            mismatches += 1;
        }
        rows.push(format!(
            "{{\"step\":\"{}\",\"rate\":{},\"shed\":{},\"retries\":{},\"degraded_serial\":{},\
             \"degraded_cpu\":{},\"timed_out\":{},\"failed\":{},\"completed\":{},\
             \"faults_injected\":{}}}",
            step,
            rate,
            r.shed,
            r.retries,
            r.degraded_serial,
            r.degraded_cpu,
            r.timed_out,
            r.failed,
            r.completed,
            r.faults_injected
        ));
    }

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write(&out_path, json).expect("write resilience report");
    println!("\nwrote {}", out_path.display());
    println!(
        "(degraded queries still answer from the serial or CPU rung — same keys as the oracle)"
    );
    if mismatches > 0 {
        eprintln!("{mismatches} completed quer(ies) diverged from the oracle");
        std::process::exit(1);
    }
}
